(** Online invariant sanitizers for simulator executions.

    A monitor subscribes to the fine-grained execution events of
    {!Sb_sim.Runtime} (or of the message-passing runtime in
    [Sb_msgnet]) and checks, on every event, invariants that the paper
    states but ordinary tests only probe at selected points:

    - {b Commutativity} — protocols annotate RMWs with
      {!Sb_sim.Runtime.rmw_nature}, and the model checker's independence
      relation trusts those annotations.  The monitor runs a
      vector-clock happens-before analysis over triggers, take-effects
      and awaits; whenever two causally {e concurrent} RMWs of a
      declared commuting class ([`Readonly]/[`Readonly] or
      [`Merge]/[`Merge]) take effect back-to-back on one object, it
      re-applies the two pure RMW closures in the swapped order and
      flags any difference in final state or responses.  This catches a
      mis-declared nature — an unsound DPOR reduction — in whatever
      schedule the test happens to run.
    - {b Storage accounting} (Definitions 2 and 6) — the runtime's
      reported storage cost must equal a block-level recomputation over
      live objects, and an object state's [bits] the sum of its blocks
      (metadata such as timestamps must stay excluded).
    - {b Oracle discipline} (Definition 1) — an encoding oracle is a
      function: a block for [(source, index)] has one size, always.
    - {b Quorum discipline} — a full-broadcast await must use a quorum
      reachable despite [f] crashes, and any two quorum sizes used must
      pairwise intersect in [k] objects; the configuration itself must
      satisfy [n >= 2f + k] (cross-checked against the combinatorial
      characterisation in [Sb_quorums] for small [n]).
    - {b Availability / premature GC} — for every [(n - f)]-subset of
      the live objects (a read's possible response set), some
      still-readable write — complete or in flight, but not superseded —
      must be decodable ([k] distinct block indices) from the blocks
      stored in that subset alone.  Catches premature garbage
      collection at the moment of eviction, in {e any} schedule, long
      before a read happens to draw the bad subset and fail regularity.
      Opt-in per algorithm ({!config}[~reg_avail]): safe registers and
      bounded-version registers violate it by design.
    - {b Crash discipline} — at most [f] objects concurrently crashed
      (a recovery frees the budget), no double crashes, no delivery on a
      crashed object, no recovery of a live object, incarnation numbers
      consistent with the recoveries seen.
    - {b Dedup / at-most-once} — a non-readonly RMW must not take
      effect twice on an object within one server incarnation (a
      duplicated or retransmitted request must be absorbed by the
      server's at-most-once table, not re-applied).
    - {b Adversary partition} (Definition 7) — optionally cross-checks
      [Sb_adversary.Ad.classify]'s [F(t)]/[C+]/[C-] sets against the
      monitor's own accounting.

    Violations carry structured rules plus prose; in [Raise] mode they
    abort the run as {!Violation_exn}, which the drivers below turn into
    a shrunk, replayable decision trace. *)

type rule =
  | Commutativity of { obj : int; first : int; second : int }
      (** Tickets [first] then [second] took effect adjacently on [obj];
          swapped application disagrees despite a commuting-class
          declaration. *)
  | Quorum_unsafe of { quorum : int; other : int; need : int }
      (** Two quorum sizes used on the register need not intersect in
          [need] objects. *)
  | Quorum_overdemand of { quorum : int; max_live : int }
      (** A quorum larger than [n - f] can block forever. *)
  | Quorum_short of { quorum : int; got : int }
      (** An await returned with fewer responders than its quorum. *)
  | Config_resilience of { n : int; f : int; k : int }
      (** No quorum system is both available after [f] crashes and
          [k]-intersecting: [n < 2f + k]. *)
  | Accounting_mismatch of { reported : int; recomputed : int }
  | Oracle_asymmetry of { source : int; index : int; bits : int; expected : int }
  | Premature_gc of { sources : int list; k : int }
      (** Some [(n - f)]-subset of the live objects can decode none of
          the still-readable writes [sources] ([k] distinct block
          indices needed). *)
  | Crash_discipline of { detail : string }
  | Adversary_partition of { detail : string }
  | Dedup of { obj : int; ticket : int }
      (** A non-readonly RMW took effect twice on [obj] within one
          server incarnation: the at-most-once table failed to absorb a
          duplicated or retransmitted request.  (Re-application in a
          {e later} incarnation is legal — the table is volatile — and
          is not flagged; idempotent RMWs make it harmless.) *)
  | Storage_floor of { copies : int; d_bits : int; live_full : int; need : int }
      (** The replication floor of the sibling lower bounds
          (arXiv:1705.07212 over read/write base objects,
          arXiv:1805.06265 over Byzantine ones): fewer than
          [copies - crashed] live objects hold a full copy ([>= d_bits]
          stored block bits) of the value.  An emulation below this
          floor has trimmed too eagerly — a crash set within the
          remaining budget can erase the latest value entirely. *)

type violation = { rule : rule; v_time : int; v_detail : string }

exception Violation_exn of violation

val rule_name : rule -> string
(** Stable kebab-case identifier, e.g. ["premature-gc"]. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

type mode =
  | Collect  (** Accumulate violations; read them with {!violations}. *)
  | Raise    (** Abort at the first violation with {!Violation_exn}. *)

type config = {
  k : int;  (** Code dimension: blocks needed to decode a value. *)
  reg_avail : bool;  (** Enable the premature-GC/availability monitor. *)
  adversary : (int * int) option;
      (** [(ell_bits, d_bits)]: enable the Definition 7 partition
          cross-check (plain simulator worlds only). *)
  floor : (int * int) option;
      (** [(copies, d_bits)]: enable the replication-floor monitor — at
          every point of the run, live objects holding [>= d_bits]
          stored block bits must number at least [copies] minus the
          objects currently crashed.  Opt-in per algorithm: [(f+1, D)]
          for the read/write and Byzantine register emulations, whose
          sibling bounds prove exactly that floor; coded RMW-model
          algorithms sit below it by design. *)
  byz : (int -> bool) option;
      (** Which objects a Byzantine policy compromises.  Their
          deliveries are exempt from the commutativity and dedup
          monitors (fabricated responses neither mutate state nor
          respect at-most-once — flagging them would flag the lie, not a
          bug); storage accounting and the floor monitor still apply. *)
  mode : mode;
}

val config :
  ?mode:mode ->
  ?reg_avail:bool ->
  ?adversary:int * int ->
  ?floor:int * int ->
  ?byz:(int -> bool) ->
  k:int ->
  unit ->
  config
(** Defaults: [Collect], availability monitor off, no adversary check,
    no floor monitor, nobody compromised. *)

type t

val attach : config -> Sb_sim.Runtime.world -> t
(** Builds a monitor over the world and registers it as an observer.
    Attach before the first step — the monitor assumes it sees every
    event.  Configuration-level violations (resilience) are reported
    immediately.  The monitor never mutates the world; instrumented and
    bare executions of one decision trace stay byte-identical. *)

val attach_mp : config -> Sb_msgnet.Mp_runtime.world -> t
(** The same monitors over the message-passing runtime (servers play the
    object role).  The adversary cross-check is ignored here. *)

val violations : t -> violation list
(** Violations recorded so far, oldest first ([Collect] mode). *)

val events_seen : t -> int
(** Number of execution events dispatched to this monitor. *)

(** {1 Drivers}

    Sanitized execution that turns a violation into a {e shrunk}
    replayable schedule, via [Sb_modelcheck.Shrink]. *)

type report = {
  r_violation : violation;
  r_decisions : Sb_sim.Runtime.decision list;
      (** The decision prefix that produced the violation. *)
  r_shrunk : Sb_sim.Runtime.decision list;
      (** A locally-minimal sub-trace that still violates (possibly via
          a different rule) when replayed against a fresh monitored
          world. *)
}

val violates :
  mk_world:(unit -> Sb_sim.Runtime.world) ->
  config ->
  Sb_sim.Runtime.decision list ->
  bool
(** Replays the trace against a fresh monitored ([Collect]) world and
    reports whether any violation fired — the shrinking predicate. *)

val run :
  ?max_steps:int ->
  config ->
  mk_world:(unit -> Sb_sim.Runtime.world) ->
  Sb_sim.Runtime.policy ->
  (Sb_sim.Runtime.outcome * t, report) result
(** Runs a policy against a fresh monitored world ([Raise] mode),
    recording the decisions taken; on a violation, replays and shrinks.
    [mk_world] must be deterministic. *)

val instrument : config -> Sb_sim.Runtime.world -> unit
(** [Explore.config.instrument]-shaped hook: attaches a [Raise]-mode
    monitor and forgets the handle. *)

val explore_sanitized :
  config ->
  Sb_modelcheck.Explore.config ->
  (Sb_modelcheck.Explore.outcome, report) result
(** Runs the model checker with every world it creates monitored.  A
    monitor violation anywhere in the schedule tree surfaces as a shrunk
    [Error] report; [Ok] is the ordinary exploration outcome (which may
    still contain a consistency violation of its own). *)
