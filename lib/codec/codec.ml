type t = {
  name : string;
  k : int;
  n : int option;
  value_bytes : int;
  block_bytes : int -> int;
  encode : bytes -> int -> bytes;
  decode : (int * bytes) list -> bytes option;
}

let value_bits c = 8 * c.value_bytes
let block_bits c i = 8 * c.block_bytes i
let max_index c = c.n

let dedup_blocks blocks =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (i, _) ->
      if Hashtbl.mem seen i then false
      else begin
        Hashtbl.add seen i ();
        true
      end)
    blocks

let check_value ~value_bytes v =
  if Bytes.length v <> value_bytes then
    invalid_arg
      (Printf.sprintf "codec: value has %d bytes, expected %d" (Bytes.length v)
         value_bytes)

let check_index ?n i =
  if i < 0 then invalid_arg "codec: negative block index";
  match n with
  | Some n when i >= n ->
    invalid_arg (Printf.sprintf "codec: block index %d out of range [0,%d)" i n)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Replication                                                         *)
(* ------------------------------------------------------------------ *)

let replication ~value_bytes ~n =
  if n < 1 then invalid_arg "Codec.replication: n must be >= 1";
  {
    name = Printf.sprintf "replication(n=%d)" n;
    k = 1;
    n = Some n;
    value_bytes;
    block_bytes = (fun i -> check_index ~n i; value_bytes);
    encode =
      (fun v i ->
        check_value ~value_bytes v;
        check_index ~n i;
        Bytes.copy v);
    decode =
      (fun blocks ->
        match dedup_blocks blocks with
        | [] -> None
        | (_, b) :: _ -> if Bytes.length b = value_bytes then Some (Bytes.copy b) else None);
  }

(* ------------------------------------------------------------------ *)
(* Striping (k-of-k split, no redundancy)                              *)
(* ------------------------------------------------------------------ *)

let striping ~value_bytes ~k =
  if k < 1 then invalid_arg "Codec.striping: k must be >= 1";
  let frag = (value_bytes + k - 1) / k in
  let frag = max frag 1 in
  {
    name = Printf.sprintf "striping(k=%d)" k;
    k;
    n = Some k;
    value_bytes;
    block_bytes = (fun i -> check_index ~n:k i; frag);
    encode =
      (fun v i ->
        check_value ~value_bytes v;
        check_index ~n:k i;
        (Sb_util.Bytesx.chunks v ~size:frag ~count:k).(i));
    decode =
      (fun blocks ->
        let blocks = dedup_blocks blocks in
        let have = Hashtbl.create k in
        List.iter (fun (i, b) -> if i >= 0 && i < k then Hashtbl.replace have i b) blocks;
        if Hashtbl.length have < k then None
        else
          let cs = Array.init k (fun i -> Hashtbl.find have i) in
          if Array.exists (fun c -> Bytes.length c <> frag) cs then None
          else Some (Sb_util.Bytesx.concat_chunks cs ~len:value_bytes));
  }

(* ------------------------------------------------------------------ *)
(* Single parity (RAID-5 style): k data fragments + 1 xor block        *)
(* ------------------------------------------------------------------ *)

let parity ~value_bytes ~k =
  if k < 1 then invalid_arg "Codec.parity: k must be >= 1";
  let n = k + 1 in
  let frag = max 1 ((value_bytes + k - 1) / k) in
  let fragments v = Sb_util.Bytesx.chunks v ~size:frag ~count:k in
  let parity_of frags =
    let out = Bytes.make frag '\000' in
    Array.iter (fun f -> Sb_util.Bytesx.xor_into ~src:f ~dst:out) frags;
    out
  in
  let encode v i =
    check_value ~value_bytes v;
    check_index ~n i;
    let frags = fragments v in
    if i < k then frags.(i) else parity_of frags
  in
  let decode blocks =
    let blocks = dedup_blocks blocks in
    let have = Hashtbl.create n in
    List.iter
      (fun (i, b) -> if i >= 0 && i < n && Bytes.length b = frag then Hashtbl.replace have i b)
      blocks;
    if Hashtbl.length have < k then None
    else begin
      let missing =
        List.filter (fun i -> not (Hashtbl.mem have i)) (List.init k Fun.id)
      in
      match missing with
      | [] ->
        let frags = Array.init k (Hashtbl.find have) in
        Some (Sb_util.Bytesx.concat_chunks frags ~len:value_bytes)
      | [ j ] when Hashtbl.mem have k ->
        (* Reconstruct the missing fragment from the parity. *)
        let rebuilt = Bytes.copy (Hashtbl.find have k) in
        List.iter
          (fun i ->
            if i <> j then Sb_util.Bytesx.xor_into ~src:(Hashtbl.find have i) ~dst:rebuilt)
          (List.init k Fun.id);
        let frags =
          Array.init k (fun i -> if i = j then rebuilt else Hashtbl.find have i)
        in
        Some (Sb_util.Bytesx.concat_chunks frags ~len:value_bytes)
      | _ -> None
    end
  in
  {
    name = Printf.sprintf "parity(k=%d)" k;
    k;
    n = Some n;
    value_bytes;
    block_bytes = (fun i -> check_index ~n i; frag);
    encode;
    decode;
  }

(* ------------------------------------------------------------------ *)
(* Linear MDS codecs via a generator matrix functor                    *)
(* ------------------------------------------------------------------ *)

module type PACKED_FIELD = sig
  include Sb_gf.Field.S

  val elem_bytes : int
  val get_elem : bytes -> int -> t
  val set_elem : bytes -> int -> t -> unit

  val mul_into : coeff:t -> src:bytes -> dst:bytes -> unit
  (** Add [coeff * src] into [dst] element-wise over packed elements —
      the codec hot path, table-sliced per field. *)
end

module Packed_gf256 = struct
  include Sb_gf.Gf256

  let elem_bytes = 1
  let get_elem b i = Char.code (Bytes.get b i)
  let set_elem b i v = Bytes.set b i (Char.chr v)
  let mul_into = mul_bytes_into
end

module Packed_gf2p16 = struct
  include Sb_gf.Gf2p16

  let elem_bytes = 2
  let get_elem b i = Char.code (Bytes.get b (2 * i)) lor (Char.code (Bytes.get b ((2 * i) + 1)) lsl 8)

  let set_elem b i v =
    Bytes.set b (2 * i) (Char.chr (v land 0xff));
    Bytes.set b ((2 * i) + 1) (Char.chr ((v lsr 8) land 0xff))

  let mul_into = mul_bytes_into
end

module Linear (F : PACKED_FIELD) = struct
  module M = Sb_gf.Matrix.Make (F)

  (* A codec from an [n x k] generator matrix, any [k] rows of which are
     invertible (MDS property).  The value is padded and split into [k]
     shards of [shard_elems] field elements; block [i] is row [i] of the
     generator applied element-wise across shard positions. *)
  let make ~name ~value_bytes ~k ~n gen =
    if k < 1 then invalid_arg "Codec.linear: k must be >= 1";
    if n < k then invalid_arg "Codec.linear: n must be >= k";
    if M.rows gen <> n || M.cols gen <> k then
      invalid_arg "Codec.linear: generator has wrong shape";
    let shard_elems =
      max 1 ((value_bytes + (k * F.elem_bytes) - 1) / (k * F.elem_bytes))
    in
    let shard_bytes = shard_elems * F.elem_bytes in
    let shards_of_value v =
      let v = Sb_util.Bytesx.pad_to v (k * shard_bytes) in
      Array.init k (fun j -> Bytes.sub v (j * shard_bytes) shard_bytes)
    in
    let encode v i =
      check_value ~value_bytes v;
      check_index ~n i;
      let shards = shards_of_value v in
      let out = Bytes.make shard_bytes '\000' in
      for j = 0 to k - 1 do
        F.mul_into ~coeff:(M.get gen i j) ~src:shards.(j) ~dst:out
      done;
      out
    in
    (* The generator submatrix — and hence its inverse — depends only on
       which k indices survived, a tiny set in practice (readers see the
       same quorums over and over), so memoise it.  Codec values are
       shared across domains by the parallel explorer: the table is
       mutex-guarded, with inversion done outside the lock (a racing
       duplicate computes the same matrix). *)
    let inv_cache : (string, M.t option) Hashtbl.t = Hashtbl.create 16 in
    let inv_lock = Mutex.create () in
    let inverse_for rows =
      let key =
        String.init
          (2 * Array.length rows)
          (fun i ->
            let r = rows.(i lsr 1) in
            Char.chr (if i land 1 = 0 then r land 0xff else (r lsr 8) land 0xff))
      in
      match Mutex.protect inv_lock (fun () -> Hashtbl.find_opt inv_cache key) with
      | Some cached -> cached
      | None ->
        let inv =
          match M.invert (M.sub_rows gen rows) with
          | exception M.Singular -> None
          | inverse -> Some inverse
        in
        Mutex.protect inv_lock (fun () ->
            if Hashtbl.length inv_cache < 4096 then
              Hashtbl.replace inv_cache key inv);
        inv
    in
    let decode blocks =
      let blocks = dedup_blocks blocks in
      let blocks =
        List.filter (fun (i, b) -> i >= 0 && i < n && Bytes.length b = shard_bytes) blocks
      in
      if List.length blocks < k then None
      else begin
        let chosen = Array.of_list (List.filteri (fun idx _ -> idx < k) blocks) in
        let rows = Array.map fst chosen in
        match inverse_for rows with
        | None -> None
        | Some inverse ->
          let out = Bytes.make (k * shard_bytes) '\000' in
          let shard = Bytes.make shard_bytes '\000' in
          (* shard_j = sum_r inverse[j][r] * block_r, one row-multiply
             per term. *)
          for j = 0 to k - 1 do
            Bytes.fill shard 0 shard_bytes '\000';
            for r = 0 to k - 1 do
              F.mul_into ~coeff:(M.get inverse j r) ~src:(snd chosen.(r))
                ~dst:shard
            done;
            Bytes.blit shard 0 out (j * shard_bytes) shard_bytes
          done;
          Some (Bytes.sub out 0 value_bytes)
      end
    in
    {
      name;
      k;
      n = Some n;
      value_bytes;
      block_bytes = (fun i -> check_index ~n i; shard_bytes);
      encode;
      decode;
    }

  (* The paper's Claim 1, made constructive for linear codecs: two
     values are I-colliding iff their shard vectors differ by an element
     of the kernel of the generator submatrix G_I.  When |I| < k that
     kernel is non-trivial (rank <= |I|), so a collision always exists;
     we realise one by adding a kernel vector at a single element
     position of each shard, choosing a position that stays inside the
     un-padded part of the value. *)
  let colliding_value ~value_bytes ~k gen ~indices ~base =
    if Bytes.length base <> value_bytes then
      invalid_arg "Codec.colliding_value: base value size mismatch";
    let indices = List.sort_uniq Int.compare indices in
    if List.exists (fun i -> i < 0 || i >= M.rows gen) indices then
      invalid_arg "Codec.colliding_value: index out of range";
    let shard_elems =
      max 1 ((value_bytes + (k * F.elem_bytes) - 1) / (k * F.elem_bytes))
    in
    let shard_bytes = shard_elems * F.elem_bytes in
    let sub = M.sub_rows gen (Array.of_list indices) in
    let kernel = M.nullspace sub in
    let realizable kvec p =
      (* every touched element must lie wholly inside the value *)
      Array.for_all (fun ok -> ok)
        (Array.mapi
           (fun j coeff ->
             coeff = F.zero
             || (j * shard_bytes) + ((p + 1) * F.elem_bytes) <= value_bytes)
           kvec)
    in
    let apply kvec p =
      let v' = Sb_util.Bytesx.pad_to (Bytes.copy base) (k * shard_bytes) in
      Array.iteri
        (fun j coeff ->
          if coeff <> F.zero then begin
            let pos = ((j * shard_bytes) / F.elem_bytes) + p in
            F.set_elem v' pos (F.add (F.get_elem v' pos) coeff)
          end)
        kvec;
      Bytes.sub v' 0 value_bytes
    in
    let rec search = function
      | [] -> None
      | kvec :: rest ->
        let rec try_pos p =
          if p >= shard_elems then search rest
          else if realizable kvec p then Some (apply kvec p)
          else try_pos (p + 1)
        in
        try_pos 0
    in
    search kernel

  let vandermonde ~value_bytes ~k ~n =
    if n > F.order then invalid_arg "Codec.rs_vandermonde: n exceeds field order";
    (* Any k rows of a Vandermonde matrix with distinct points form a
       square Vandermonde matrix, hence are invertible: MDS. *)
    make
      ~name:(Printf.sprintf "rs-vandermonde%s(k=%d,n=%d)"
               (if F.bits = 16 then "16" else "") k n)
      ~value_bytes ~k ~n
      (M.vandermonde n k)

  let cauchy ~value_bytes ~k ~n =
    if n > F.order then invalid_arg "Codec.rs_cauchy: n exceeds field order";
    (* Systematic generator [I; C]: every square submatrix of a Cauchy
       matrix is invertible, which extends to any k rows of [I; C]. *)
    let parity = if n > k then M.cauchy (n - k) k else M.create 0 k in
    let gen =
      M.init n k (fun i j ->
          if i < k then (if i = j then F.one else F.zero)
          else M.get parity (i - k) j)
    in
    make ~name:(Printf.sprintf "rs-cauchy(k=%d,n=%d)" k n) ~value_bytes ~k ~n gen
end

module Lin8 = Linear (Packed_gf256)
module Lin16 = Linear (Packed_gf2p16)

let rs_vandermonde ~value_bytes ~k ~n = Lin8.vandermonde ~value_bytes ~k ~n
let rs_vandermonde16 ~value_bytes ~k ~n = Lin16.vandermonde ~value_bytes ~k ~n
let rs_cauchy ~value_bytes ~k ~n = Lin8.cauchy ~value_bytes ~k ~n

let rs_vandermonde_colliding ~value_bytes ~k ~n ~indices ~base =
  Lin8.colliding_value ~value_bytes ~k (Lin8.M.vandermonde n k) ~indices ~base

let rs_cauchy_colliding ~value_bytes ~k ~n ~indices ~base =
  let parity =
    if n > k then Lin8.M.cauchy (n - k) k else Lin8.M.create 0 k
  in
  let gen =
    Lin8.M.init n k (fun i j ->
        if i < k then (if i = j then 1 else 0) else Lin8.M.get parity (i - k) j)
  in
  Lin8.colliding_value ~value_bytes ~k gen ~indices ~base

(* ------------------------------------------------------------------ *)
(* LT fountain code (rateless)                                         *)
(* ------------------------------------------------------------------ *)

(* Robust-soliton cumulative distribution over degrees 1..k. *)
let robust_soliton_cdf k =
  let c = 0.1 and delta = 0.5 in
  let r = c *. log (float_of_int k /. delta) *. sqrt (float_of_int k) in
  let kf = float_of_int k in
  let spike = int_of_float (Float.round (kf /. r)) in
  let spike = max 1 (min k spike) in
  let rho d = if d = 1 then 1.0 /. kf else 1.0 /. (float_of_int d *. float_of_int (d - 1)) in
  let tau d =
    if d < spike then r /. (float_of_int d *. kf)
    else if d = spike then r *. log (r /. delta) /. kf
    else 0.0
  in
  let weights = Array.init k (fun i -> rho (i + 1) +. tau (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make k 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(k - 1) <- 1.0;
  cdf

let sample_degree cdf prng =
  let u = Sb_util.Prng.float prng 1.0 in
  let rec go i = if i >= Array.length cdf - 1 || u <= cdf.(i) then i + 1 else go (i + 1) in
  go 0

(* Deterministic neighbour set for block [i]: degree and fragment subset
   are derived from a PRNG seeded with (seed, i), so E(v, i) is a pure
   function of (v, i) as the paper's model requires. *)
let lt_neighbours ~seed ~k ~cdf i =
  let prng = Sb_util.Prng.create ((seed * 0x9e3779b1) lxor ((i + 1) * 0x85ebca6b)) in
  let d = sample_degree cdf prng in
  let chosen = Array.make k false in
  let count = ref 0 in
  while !count < d do
    let j = Sb_util.Prng.int prng k in
    if not chosen.(j) then begin
      chosen.(j) <- true;
      incr count
    end
  done;
  chosen

let fountain ?(seed = 0) ~value_bytes ~k () =
  if k < 1 then invalid_arg "Codec.fountain: k must be >= 1";
  let frag = max 1 ((value_bytes + k - 1) / k) in
  let cdf = robust_soliton_cdf k in
  let fragments v = Sb_util.Bytesx.chunks v ~size:frag ~count:k in
  let encode v i =
    check_value ~value_bytes v;
    check_index i;
    let neighbours = lt_neighbours ~seed ~k ~cdf i in
    let frags = fragments v in
    let out = Bytes.make frag '\000' in
    Array.iteri (fun j on -> if on then Sb_util.Bytesx.xor_into ~src:frags.(j) ~dst:out) neighbours;
    out
  in
  (* Decoding = Gaussian elimination over GF(2) on the k fragment
     unknowns; strictly more powerful than peeling, so any full-rank set
     of received blocks decodes. *)
  let decode blocks =
    let blocks = dedup_blocks blocks in
    let blocks = List.filter (fun (i, b) -> i >= 0 && Bytes.length b = frag) blocks in
    let rows =
      List.map
        (fun (i, b) -> (Array.copy (lt_neighbours ~seed ~k ~cdf i), Bytes.copy b))
        blocks
    in
    let pivots = Array.make k None in
    let reduce (coeffs, rhs) =
      for j = 0 to k - 1 do
        if coeffs.(j) then
          match pivots.(j) with
          | Some (pc, pr) ->
            for j' = 0 to k - 1 do
              coeffs.(j') <- coeffs.(j') <> pc.(j')
            done;
            Sb_util.Bytesx.xor_into ~src:pr ~dst:rhs
          | None -> ()
      done;
      match Array.find_index (fun on -> on) coeffs with
      | Some j -> pivots.(j) <- Some (coeffs, rhs)
      | None -> ()
    in
    List.iter reduce rows;
    if Array.exists (fun p -> p = None) pivots then None
    else begin
      (* Back-substitute to make the system diagonal. *)
      for j = k - 1 downto 0 do
        match pivots.(j) with
        | None -> assert false
        | Some (coeffs, rhs) ->
          for j' = j + 1 to k - 1 do
            if coeffs.(j') then begin
              (match pivots.(j') with
               | Some (_, pr) -> Sb_util.Bytesx.xor_into ~src:pr ~dst:rhs
               | None -> assert false);
              coeffs.(j') <- false
            end
          done
      done;
      let frags =
        Array.init k (fun j ->
            match pivots.(j) with Some (_, rhs) -> rhs | None -> assert false)
      in
      Some (Sb_util.Bytesx.concat_chunks frags ~len:value_bytes)
    end
  in
  {
    name = Printf.sprintf "fountain(k=%d)" k;
    k;
    n = None;
    value_bytes;
    block_bytes = (fun i -> check_index i; frag);
    encode;
    decode;
  }

(* ------------------------------------------------------------------ *)
(* Symmetry check                                                      *)
(* ------------------------------------------------------------------ *)

let is_symmetric ?indices ?(trials = 16) ?(seed = 42) c =
  let indices =
    match indices with
    | Some is -> is
    | None ->
      let upper = match c.n with Some n -> min n 32 | None -> 32 in
      List.init upper (fun i -> i)
  in
  let prng = Sb_util.Prng.create seed in
  List.for_all
    (fun i ->
      let expected = c.block_bytes i in
      let ok = ref true in
      for _ = 1 to trials do
        let v = Sb_util.Prng.bytes prng c.value_bytes in
        if Bytes.length (c.encode v i) <> expected then ok := false
      done;
      !ok)
    indices
