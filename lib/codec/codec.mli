(** Symmetric black-box coding schemes (Section 3 of the paper).

    A codec packages the paper's encoding function [E : V x N -> E] and
    decoding function [D : 2^E -> V + bot] for a fixed value size.  Values
    are byte strings of exactly [value_bytes] bytes, so the paper's data
    size is [D = 8 * value_bytes] bits.

    All codecs in this library are {e symmetric} (Definition 3): the size
    of block [i] depends only on [i], never on the encoded value.  The
    test suite checks this property for every codec. *)

type t = {
  name : string;
  (** Human-readable identifier, e.g. ["rs-vandermonde(3,5)"]. *)
  k : int;
  (** Number of distinct blocks sufficient to decode.  [k = 1] is
      replication. *)
  n : int option;
  (** Number of distinct blocks the encoder produces, or [None] for a
      rateless codec that can produce blocks for every [i] in ℕ. *)
  value_bytes : int;
  (** Size of every value in bytes; the paper's [D] is [8 * value_bytes]
      bits. *)
  block_bytes : int -> int;
  (** [block_bytes i] is the size in bytes of block number [i]; constant
      across values (symmetry). *)
  encode : bytes -> int -> bytes;
  (** [encode v i] is the paper's [E(v, i)].  Raises [Invalid_argument] if
      [v] is not [value_bytes] long or [i] is out of range for a
      fixed-rate codec. *)
  decode : (int * bytes) list -> bytes option;
  (** [decode blocks] is the paper's [D]: [Some v] if the supplied
      [(index, block)] pairs determine a value, [None] otherwise.
      Duplicate indices are tolerated (the first occurrence wins). *)
}

val value_bits : t -> int
(** The paper's [D] in bits. *)

val block_bits : t -> int -> int
(** [block_bits c i] is the size of block [i] in bits. *)

val max_index : t -> int option
(** Largest valid block number plus one ([n]), or [None] if rateless. *)

val dedup_blocks : (int * bytes) list -> (int * bytes) list
(** Keeps the first block for each index, preserving order; helper shared
    by decoder implementations. *)

val replication : value_bytes:int -> n:int -> t
(** Full replication: every block is the value itself; [k = 1].  This is
    the codec under which the paper's adaptive algorithm degenerates to
    ABD-style replication. *)

val striping : value_bytes:int -> k:int -> t
(** Split into [k] fragments with no redundancy: block [i] is the [i]-th
    fragment, [n = k].  Decoding needs all [k] distinct fragments.  Useful
    as a degenerate erasure code in tests. *)

val parity : value_bytes:int -> k:int -> t
(** RAID-5-style single parity: blocks [0 .. k-1] are the data fragments
    and block [k] is their xor, so [n = k + 1] and any [k] blocks decode.
    The cheapest non-trivial MDS code; its [(k+2)D/k]-for-one-failure
    cost is the paper's introduction example. *)

val rs_vandermonde : value_bytes:int -> k:int -> n:int -> t
(** Classic Reed–Solomon over GF(2^8): the value is split into [k] data
    shards that form polynomial coefficients; block [i] is the evaluation
    at the [i]-th point.  Any [k] distinct blocks decode.  Requires
    [k <= n <= 256]. *)

val rs_vandermonde16 : value_bytes:int -> k:int -> n:int -> t
(** Same construction over GF(2^16), for [n] up to 65536.  Values are
    padded to an even number of bytes internally. *)

val rs_cauchy : value_bytes:int -> k:int -> n:int -> t
(** Systematic Reed–Solomon over GF(2^8) from the matrix [[I; Cauchy]]:
    blocks [0 .. k-1] are the raw data shards; any [k] of the [n] blocks
    decode.  Requires [n <= 256]. *)

val fountain : ?seed:int -> value_bytes:int -> k:int -> unit -> t
(** Rateless LT code with a robust-soliton degree distribution: block [i]
    is the xor of a pseudo-random subset of the [k] source fragments
    derived deterministically from [i] (and [seed], default 0).  Decoding
    uses belief-propagation peeling backed by Gaussian elimination over
    GF(2), so any set of blocks whose equations have full rank decodes;
    [k] blocks {e may} not suffice, matching the paper's remark that
    rateless codes use ℕ as the block-number domain. *)

(** {1 Colliding values (Claim 1, constructive)}

    The lower-bound proof rests on a pigeonhole argument: if the storage
    holds fewer than [D] bits of a write's blocks (distinct indices
    [I]), then two different values are {e I-colliding} — they produce
    identical blocks at every index in [I].  For linear codecs this is
    constructive: collisions are kernel elements of the generator
    submatrix [G_I].  These functions compute an actual colliding
    partner for a given value, or [None] when [I] already determines
    the value (e.g. [|I| >= k], where the MDS property forbids
    collisions). *)

val rs_vandermonde_colliding :
  value_bytes:int -> k:int -> n:int -> indices:int list -> base:bytes -> bytes option
(** [Some v'] with [v' <> base] and
    [encode v' i = encode base i] for every [i] in [indices], for the
    codec {!rs_vandermonde} with the same parameters.  May also return
    [None] on tiny padded values where no collision is expressible
    inside the value's bytes. *)

val rs_cauchy_colliding :
  value_bytes:int -> k:int -> n:int -> indices:int list -> base:bytes -> bytes option
(** Same for {!rs_cauchy}. *)

val is_symmetric : ?indices:int list -> ?trials:int -> ?seed:int -> t -> bool
(** Empirical check of Definition 3: encodes [trials] random value pairs
    (default 16) at each index (default: [0 .. min (n-1) 31] or
    [0 .. 31]) and verifies block sizes agree.  Used by the test suite. *)
