(** Univariate polynomials over a finite field, coefficient form
    (lowest degree first).

    Reed–Solomon shares are evaluations of the data polynomial; the
    {!Matrix}-based decoder inverts a Vandermonde system, while
    {!Make.interpolate} recovers the same coefficients by Lagrange
    interpolation.  The test suite cross-checks the two decode paths
    against each other. *)

module Make (F : Field.S) : sig
  type t = int array
  (** Coefficients, lowest degree first; the zero polynomial is [[||]]. *)

  val zero : t
  val degree : t -> int
  (** [-1] for the zero polynomial. *)

  val normalise : t -> t
  (** Drops trailing zero coefficients. *)

  val eval : t -> F.t -> F.t
  (** Horner evaluation. *)

  val add : t -> t -> t
  val scale : F.t -> t -> t
  val mul : t -> t -> t

  val interpolate : (F.t * F.t) list -> t
  (** Lagrange interpolation through points with pairwise distinct
      x-coordinates; the result has degree below the number of points.
      Raises [Invalid_argument] on duplicate x-coordinates. *)
end
