(** GF(2^8), the field used by the default Reed–Solomon codec.

    The field is constructed from the AES/Rijndael primitive polynomial
    x^8 + x^4 + x^3 + x^2 + 1 (0x11d) with generator 2.  Multiplication
    and inversion go through precomputed log/antilog tables. *)

include Field.S

val mul_slow : t -> t -> t
(** Table-free carry-less ("Russian peasant") multiplication, kept as a
    test oracle for the table-driven {!mul}. *)

val mul_bytes_into : coeff:t -> src:bytes -> dst:bytes -> unit
(** [mul_bytes_into ~coeff ~src ~dst] adds [coeff * src] into [dst]
    element-wise, treating each byte as a field element — the inner loop of
    Reed–Solomon encoding. *)
