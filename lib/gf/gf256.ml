type t = int

let order = 256
let bits = 8
let zero = 0
let one = 1
let generator = 2

(* Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1. *)
let poly = 0x11d

let mul_slow a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x100 <> 0 then a lxor poly else a in
      go a (b lsr 1) acc
  in
  go a b 0

let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := mul_slow !x generator
  done;
  (* Duplicate so that exp_table.(log a + log b) needs no reduction. *)
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let add = ( lxor )
let sub = ( lxor )

let mul a b =
  if a = 0 || b = 0 then 0
  else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero
  else exp_table.(255 - log_table.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + 255 - log_table.(b))

let pow a e =
  if e < 0 then invalid_arg "Gf256.pow: negative exponent";
  if e = 0 then 1
  else if a = 0 then 0
  else exp_table.(log_table.(a) * e mod 255)

let exp i =
  let i = ((i mod 255) + 255) mod 255 in
  exp_table.(i)

let log a = if a = 0 then raise Division_by_zero else log_table.(a)

(* Flat 256x256 product table, row [c] holding [c*s] for every [s].
   64 KiB built once from the log/exp tables; the row-multiply inner
   loop becomes a single byte load with no branches, instead of two
   array loads behind a zero test. *)
let mul_table = Bytes.create 65536

let () =
  for c = 0 to 255 do
    let row = c lsl 8 in
    for s = 0 to 255 do
      Bytes.unsafe_set mul_table (row lor s) (Char.unsafe_chr (mul c s))
    done
  done

let mul_bytes_into ~coeff ~src ~dst =
  let n = Bytes.length dst in
  if Bytes.length src <> n then invalid_arg "Gf256.mul_bytes_into: length mismatch";
  if coeff = 0 then ()
  else if coeff = 1 then Sb_util.Bytesx.xor_into ~src ~dst
  else begin
    let row = coeff lsl 8 in
    for i = 0 to n - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      Bytes.unsafe_set dst i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get dst i)
            lxor Char.code (Bytes.unsafe_get mul_table (row lor s))))
    done
  end
