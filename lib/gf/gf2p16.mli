(** GF(2^16), for Reed–Solomon instances with more than 255 shares.

    Constructed from the primitive polynomial
    x^16 + x^12 + x^3 + x + 1 (0x1100b) with generator 3.  Tables are
    built once at module initialisation (256 KiB of antilogs). *)

include Field.S

val mul_slow : t -> t -> t
(** Table-free multiplication, used as a test oracle. *)

val mul_bytes_into : coeff:t -> src:bytes -> dst:bytes -> unit
(** [mul_bytes_into ~coeff ~src ~dst] adds [coeff * src] into [dst]
    element-wise over packed little-endian 16-bit field elements — the
    inner loop of the GF(2^16) Reed–Solomon codecs.  Both buffers must
    have the same even length. *)
