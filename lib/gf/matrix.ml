(** Dense linear algebra over a finite field.

    This is a functor so the Reed–Solomon codec can run over GF(2^8) or
    GF(2^16).  Matrices are immutable from the caller's point of view:
    every operation returns a fresh matrix. *)

module Make (F : Field.S) = struct
  type t = { rows : int; cols : int; data : int array }
  (** Row-major storage; element [(i, j)] lives at [data.(i * cols + j)]. *)

  let create rows cols =
    if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
    { rows; cols; data = Array.make (rows * cols) F.zero }

  let rows m = m.rows
  let cols m = m.cols

  let get m i j =
    if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
      invalid_arg "Matrix.get: out of bounds";
    m.data.((i * m.cols) + j)

  let set m i j v =
    if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
      invalid_arg "Matrix.set: out of bounds";
    if v < 0 || v >= F.order then invalid_arg "Matrix.set: not a field element";
    m.data.((i * m.cols) + j) <- v

  let init rows cols f =
    let m = create rows cols in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        set m i j (f i j)
      done
    done;
    m

  let copy m = { m with data = Array.copy m.data }

  let identity n = init n n (fun i j -> if i = j then F.one else F.zero)

  let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data

  let mul a b =
    if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
    let out = create a.rows b.cols in
    for i = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let aik = get a i k in
        if aik <> F.zero then
          for j = 0 to b.cols - 1 do
            let cur = get out i j in
            set out i j (F.add cur (F.mul aik (get b k j)))
          done
      done
    done;
    out

  let apply m v =
    if m.cols <> Array.length v then invalid_arg "Matrix.apply: dimension mismatch";
    Array.init m.rows (fun i ->
        let acc = ref F.zero in
        for j = 0 to m.cols - 1 do
          acc := F.add !acc (F.mul (get m i j) v.(j))
        done;
        !acc)

  let swap_rows m i j =
    if i <> j then
      for col = 0 to m.cols - 1 do
        let tmp = get m i col in
        set m i col (get m j col);
        set m j col tmp
      done

  let scale_row m i coeff =
    for col = 0 to m.cols - 1 do
      set m i col (F.mul coeff (get m i col))
    done

  (* row i <- row i + coeff * row j *)
  let add_scaled_row m i j coeff =
    if coeff <> F.zero then
      for col = 0 to m.cols - 1 do
        set m i col (F.add (get m i col) (F.mul coeff (get m j col)))
      done

  exception Singular

  (* Gauss–Jordan elimination of [m], applying the same row operations to
     [companion] (which carries the identity for inversion, or a
     right-hand side for solving). *)
  let eliminate m companion =
    if m.rows <> m.cols then invalid_arg "Matrix.eliminate: not square";
    let n = m.rows in
    for col = 0 to n - 1 do
      (* Find a pivot at or below the diagonal. *)
      let pivot = ref (-1) in
      (try
         for row = col to n - 1 do
           if get m row col <> F.zero then begin
             pivot := row;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot < 0 then raise Singular;
      swap_rows m col !pivot;
      swap_rows companion col !pivot;
      let inv_pivot = F.inv (get m col col) in
      scale_row m col inv_pivot;
      scale_row companion col inv_pivot;
      for row = 0 to n - 1 do
        if row <> col then begin
          let coeff = get m row col in
          add_scaled_row m row col coeff;
          add_scaled_row companion row col coeff
        end
      done
    done

  let invert m =
    let work = copy m in
    let out = identity m.rows in
    eliminate work out;
    out

  let solve m rhs =
    if m.rows <> Array.length rhs then invalid_arg "Matrix.solve: dimension mismatch";
    let work = copy m in
    let companion = init m.rows 1 (fun i _ -> rhs.(i)) in
    eliminate work companion;
    Array.init m.rows (fun i -> get companion i 0)

  (* A basis of the right kernel {x | M x = 0}, via Gaussian elimination
     to reduced row-echelon form.  Used by the collision finder that
     makes the paper's Claim 1 executable: values colliding on a set of
     stored block indices differ exactly by kernel elements of the
     generator submatrix. *)
  let nullspace m =
    let rows_n = m.rows and cols_n = m.cols in
    let work = copy m in
    (* pivot_col.(r) = column of the pivot in row r, -1 if none *)
    let pivot_of_row = Array.make rows_n (-1) in
    let pivot_row_of_col = Array.make cols_n (-1) in
    let r = ref 0 in
    for col = 0 to cols_n - 1 do
      if !r < rows_n then begin
        (* find a pivot in this column at or below row !r *)
        let pivot = ref (-1) in
        (try
           for row = !r to rows_n - 1 do
             if get work row col <> F.zero then begin
               pivot := row;
               raise Exit
             end
           done
         with Exit -> ());
        if !pivot >= 0 then begin
          swap_rows work !r !pivot;
          scale_row work !r (F.inv (get work !r col));
          for row = 0 to rows_n - 1 do
            if row <> !r then add_scaled_row work row !r (get work row col)
          done;
          pivot_of_row.(!r) <- col;
          pivot_row_of_col.(col) <- !r;
          incr r
        end
      end
    done;
    (* Free columns generate the kernel. *)
    let basis = ref [] in
    for col = 0 to cols_n - 1 do
      if pivot_row_of_col.(col) < 0 then begin
        let v = Array.make cols_n F.zero in
        v.(col) <- F.one;
        for row = 0 to rows_n - 1 do
          let pc = pivot_of_row.(row) in
          if pc >= 0 then
            (* x_pc = - sum over free columns; minus is plus in char 2 *)
            v.(pc) <- F.add v.(pc) (get work row col)
        done;
        basis := v :: !basis
      end
    done;
    List.rev !basis

  let sub_rows m indices =
    let out = create (Array.length indices) m.cols in
    Array.iteri
      (fun oi src ->
        for j = 0 to m.cols - 1 do
          set out oi j (get m src j)
        done)
      indices;
    out

  (* Vandermonde matrix with distinct evaluation points x_i = generator^i,
     padded with the point 0 for row 0 to keep points distinct for any
     rows < order. Row i = [1, x_i, x_i^2, ...]. *)
  let vandermonde rows cols =
    if rows > F.order then invalid_arg "Matrix.vandermonde: too many rows";
    init rows cols (fun i j ->
        (* Points: 0, 1, g, g^2, ... are pairwise distinct. *)
        let x = if i = 0 then F.zero else F.exp (i - 1) in
        F.pow x j)

  (* Cauchy matrix with x_i = generator^i (i-th distinct nonzero point set)
     and y_j chosen disjoint from the x set; entry 1/(x_i + y_j). *)
  let cauchy rows cols =
    if rows + cols > F.order then invalid_arg "Matrix.cauchy: field too small";
    init rows cols (fun i j -> F.inv (F.add (i + cols) j))
    (* x_i = i + cols and y_j = j are disjoint integer point sets, and in
       characteristic 2 x + y = 0 iff x = y, so every entry is defined. *)

  let to_string m =
    let buf = Buffer.create 64 in
    for i = 0 to m.rows - 1 do
      for j = 0 to m.cols - 1 do
        if j > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int (get m i j))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
end
