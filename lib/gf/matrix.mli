(** Dense linear algebra over a finite field.

    A functor over {!Field.S}, so the Reed–Solomon codecs can run over
    GF(2^8) or GF(2^16).  Used for encoding (generator-matrix
    application), decoding (submatrix inversion), and the constructive
    side of the paper's Claim 1 (kernel computation: values colliding on
    an index set [I] differ by elements of the kernel of the generator
    submatrix [G_I]). *)

module Make (F : Field.S) : sig
  type t
  (** A matrix with elements of [F], row-major. *)

  val create : int -> int -> t
  (** [create rows cols] is the all-zero matrix. *)

  val init : int -> int -> (int -> int -> F.t) -> t
  val rows : t -> int
  val cols : t -> int

  val get : t -> int -> int -> F.t
  (** Raises [Invalid_argument] out of bounds. *)

  val set : t -> int -> int -> F.t -> unit
  (** Raises [Invalid_argument] out of bounds or when the value is not a
      field element.  Mutates in place; the other operations never
      mutate their inputs. *)

  val copy : t -> t
  val identity : int -> t
  val equal : t -> t -> bool

  val mul : t -> t -> t
  (** Matrix product; raises [Invalid_argument] on dimension mismatch. *)

  val apply : t -> F.t array -> F.t array
  (** Matrix–vector product. *)

  val swap_rows : t -> int -> int -> unit
  val scale_row : t -> int -> F.t -> unit

  exception Singular

  val invert : t -> t
  (** Gauss–Jordan inversion; raises {!Singular} when no inverse
      exists and [Invalid_argument] when not square. *)

  val solve : t -> F.t array -> F.t array
  (** [solve a b] is the [x] with [a x = b]; raises {!Singular} on
      singular systems. *)

  val nullspace : t -> F.t array list
  (** A basis of the right kernel [{x | M x = 0}] (empty for full
      column rank).  The collision finder builds the paper's
      [I]-colliding value pairs from these vectors. *)

  val sub_rows : t -> int array -> t
  (** [sub_rows m indices] stacks the selected rows (in the given
      order) into a new matrix. *)

  val vandermonde : int -> int -> t
  (** [vandermonde n k]: row [i] is [[1, x_i, x_i^2, ..., x_i^(k-1)]]
      with pairwise distinct points [x_0 = 0, x_i = g^(i-1)].  Any [k]
      rows form an invertible matrix (the Reed–Solomon MDS property);
      requires [n <= F.order]. *)

  val cauchy : int -> int -> t
  (** [cauchy rows cols]: entries [1/(x_i + y_j)] over disjoint point
      sets; every square submatrix is invertible.  Stacked under an
      identity it yields the systematic MDS generator used by
      [rs_cauchy]; requires [rows + cols <= F.order]. *)

  val to_string : t -> string
  (** Rows of space-separated elements, for diagnostics. *)
end
