type t = int

let order = 65536
let bits = 16
let zero = 0
let one = 1
let generator = 3

(* Primitive polynomial x^16 + x^12 + x^3 + x + 1. *)
let poly = 0x1100b

let mul_slow a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x10000 <> 0 then a lxor poly else a in
      go a (b lsr 1) acc
  in
  go a b 0

let exp_table = Array.make (2 * 65535) 0
let log_table = Array.make 65536 0

let () =
  let x = ref 1 in
  for i = 0 to 65534 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := mul_slow !x generator
  done;
  for i = 65535 to (2 * 65535) - 1 do
    exp_table.(i) <- exp_table.(i - 65535)
  done

let add = ( lxor )
let sub = ( lxor )

let mul a b =
  if a = 0 || b = 0 then 0
  else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero
  else exp_table.(65535 - log_table.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + 65535 - log_table.(b))

let pow a e =
  if e < 0 then invalid_arg "Gf2p16.pow: negative exponent";
  if e = 0 then 1
  else if a = 0 then 0
  else exp_table.(log_table.(a) * e mod 65535)

let exp i =
  let i = ((i mod 65535) + 65535) mod 65535 in
  exp_table.(i)

let log a = if a = 0 then raise Division_by_zero else log_table.(a)

(* Row-multiply over packed little-endian 16-bit elements.  A full
   product table would be 8 GiB, so slice per call instead: two
   256-entry tables give [c*s] as [c*(s_hi<<8) xor c*s_lo] by
   linearity.  Building them costs ~512 table multiplies, so short
   rows take the direct log/exp path. *)
let mul_bytes_into ~coeff ~src ~dst =
  let n = Bytes.length dst in
  if Bytes.length src <> n then invalid_arg "Gf2p16.mul_bytes_into: length mismatch";
  if n land 1 <> 0 then invalid_arg "Gf2p16.mul_bytes_into: odd length";
  if coeff = 0 then ()
  else if coeff = 1 then Sb_util.Bytesx.xor_into ~src ~dst
  else begin
    let lc = log_table.(coeff) in
    let elems = n lsr 1 in
    if elems < 64 then
      for p = 0 to elems - 1 do
        let i = p lsl 1 in
        let s =
          Char.code (Bytes.unsafe_get src i)
          lor (Char.code (Bytes.unsafe_get src (i + 1)) lsl 8)
        in
        if s <> 0 then begin
          let prod = exp_table.(lc + log_table.(s)) in
          Bytes.unsafe_set dst i
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get dst i) lxor (prod land 0xff)));
          Bytes.unsafe_set dst (i + 1)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get dst (i + 1)) lxor (prod lsr 8)))
        end
      done
    else begin
      let lo = Array.make 256 0 and hi = Array.make 256 0 in
      for b = 1 to 255 do
        lo.(b) <- exp_table.(lc + log_table.(b));
        hi.(b) <- exp_table.(lc + log_table.(b lsl 8))
      done;
      for p = 0 to elems - 1 do
        let i = p lsl 1 in
        let prod =
          Array.unsafe_get lo (Char.code (Bytes.unsafe_get src i))
          lxor Array.unsafe_get hi (Char.code (Bytes.unsafe_get src (i + 1)))
        in
        Bytes.unsafe_set dst i
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get dst i) lxor (prod land 0xff)));
        Bytes.unsafe_set dst (i + 1)
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get dst (i + 1)) lxor (prod lsr 8)))
      done
    end
  end
