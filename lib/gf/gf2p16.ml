type t = int

let order = 65536
let bits = 16
let zero = 0
let one = 1
let generator = 3

(* Primitive polynomial x^16 + x^12 + x^3 + x + 1. *)
let poly = 0x1100b

let mul_slow a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x10000 <> 0 then a lxor poly else a in
      go a (b lsr 1) acc
  in
  go a b 0

let exp_table = Array.make (2 * 65535) 0
let log_table = Array.make 65536 0

let () =
  let x = ref 1 in
  for i = 0 to 65534 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := mul_slow !x generator
  done;
  for i = 65535 to (2 * 65535) - 1 do
    exp_table.(i) <- exp_table.(i - 65535)
  done

let add = ( lxor )
let sub = ( lxor )

let mul a b =
  if a = 0 || b = 0 then 0
  else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero
  else exp_table.(65535 - log_table.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + 65535 - log_table.(b))

let pow a e =
  if e < 0 then invalid_arg "Gf2p16.pow: negative exponent";
  if e = 0 then 1
  else if a = 0 then 0
  else exp_table.(log_table.(a) * e mod 65535)

let exp i =
  let i = ((i mod 65535) + 65535) mod 65535 in
  exp_table.(i)

let log a = if a = 0 then raise Division_by_zero else log_table.(a)
