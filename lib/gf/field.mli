(** Signature of a finite field whose elements are represented as small
    non-negative integers [0 .. order-1].

    Both {!Gf256} and {!Gf2p16} implement this signature, and the linear
    algebra in {!Matrix} is a functor over it, so the Reed–Solomon codec
    can be instantiated at either field. *)

module type S = sig
  type t = int
  (** Field elements are integers in [\[0, order)].  The representation is
      exposed so that codecs can pack elements into byte buffers. *)

  val order : int
  (** Number of elements of the field; a power of two. *)

  val bits : int
  (** log2 [order]: the number of bits per element. *)

  val zero : t
  val one : t

  val add : t -> t -> t
  (** Characteristic-2 addition, i.e. xor. *)

  val sub : t -> t -> t
  (** Same as {!add} in characteristic 2. *)

  val mul : t -> t -> t

  val div : t -> t -> t
  (** [div a b] raises [Division_by_zero] when [b = zero]. *)

  val inv : t -> t
  (** Multiplicative inverse; raises [Division_by_zero] on [zero]. *)

  val pow : t -> int -> t
  (** [pow a e] for [e >= 0]; [pow zero 0 = one] by convention. *)

  val generator : t
  (** A primitive element: its powers enumerate all non-zero elements. *)

  val exp : int -> t
  (** [exp i] is [generator^i] (index taken mod [order - 1]). *)

  val log : t -> int
  (** Discrete log base {!generator}; raises [Division_by_zero] on zero. *)
end
