(** Univariate polynomials over a finite field, coefficient form
    (lowest degree first).

    Reed–Solomon shares are evaluations of the data polynomial; the
    {!Matrix}-based decoder inverts a Vandermonde system, while
    {!Make.interpolate} recovers the same coefficients by Lagrange
    interpolation.  The codec test suite cross-checks the two decode
    paths against each other. *)

module Make (F : Field.S) = struct
  type t = int array

  let zero = [||]
  let degree p = Array.length p - 1

  let normalise p =
    let rec last i = if i >= 0 && p.(i) = F.zero then last (i - 1) else i in
    let d = last (Array.length p - 1) in
    if d = Array.length p - 1 then p else Array.sub p 0 (d + 1)

  let eval p x =
    (* Horner's rule. *)
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc x) p.(i)
    done;
    !acc

  let add a b =
    let n = max (Array.length a) (Array.length b) in
    normalise
      (Array.init n (fun i ->
           let ca = if i < Array.length a then a.(i) else F.zero in
           let cb = if i < Array.length b then b.(i) else F.zero in
           F.add ca cb))

  let scale c p =
    if c = F.zero then zero else Array.map (fun x -> F.mul c x) p

  let mul a b =
    if Array.length a = 0 || Array.length b = 0 then zero
    else begin
      let out = Array.make (Array.length a + Array.length b - 1) F.zero in
      Array.iteri
        (fun i ca ->
          if ca <> F.zero then
            Array.iteri
              (fun j cb -> out.(i + j) <- F.add out.(i + j) (F.mul ca cb))
              b)
        a;
      normalise out
    end

  (* Lagrange interpolation through distinct points. *)
  let interpolate points =
    let xs = List.map fst points in
    if List.length (List.sort_uniq Int.compare xs) <> List.length xs then
      invalid_arg "Poly.interpolate: duplicate x coordinates";
    List.fold_left
      (fun acc (xj, yj) ->
        if yj = F.zero then acc
        else begin
          (* L_j(x) = prod_{m <> j} (x - x_m) / (x_j - x_m) *)
          let numerator, denominator =
            List.fold_left
              (fun (num, den) (xm, _) ->
                if xm = xj then (num, den)
                else (mul num [| xm; F.one |] (* x + x_m = x - x_m in char 2 *),
                      F.mul den (F.sub xj xm)))
              ([| F.one |], F.one)
              points
          in
          add acc (scale (F.mul yj (F.inv denominator)) numerator)
        end)
      zero points
end
