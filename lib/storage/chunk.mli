(** Timestamped code blocks — the paper's [Chunks = Pieces x TimeStamps]
    (Algorithm 1, line 3). *)

type t = { ts : Timestamp.t; block : Block.t }

val v : ts:Timestamp.t -> Block.t -> t
val bits : t -> int
(** Storage-cost contribution: the block bits; the timestamp is
    meta-data and costs nothing (Section 3.1). *)

val pp : Format.formatter -> t -> unit
