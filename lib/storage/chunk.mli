(** Timestamped code blocks — the paper's [Chunks = Pieces x TimeStamps]
    (Algorithm 1, line 3). *)

type t = { ts : Timestamp.t; block : Block.t }

val v : ts:Timestamp.t -> Block.t -> t
val bits : t -> int
(** Storage-cost contribution: the block bits; the timestamp is
    meta-data and costs nothing (Section 3.1). *)

val add : t -> t list -> t list
(** Idempotent insertion: a chunk already present — same timestamp and
    same block [(source, index)] identity — is not added again.  Stores
    must tolerate at-least-once delivery (a retransmission re-applied
    after a server recovery), and duplicate insertions would inflate the
    measured storage without adding information. *)

val add_list : t list -> t list -> t list
(** [add_list cs chunks] {!add}s each of [cs] in order. *)

val pp : Format.formatter -> t -> unit
