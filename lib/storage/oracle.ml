module Encoder = struct
  type t = {
    codec : Sb_codec.Codec.t;
    op : int;
    value : bytes;
    mutable calls : int;
  }

  let create codec ~op ~value =
    if Bytes.length value <> codec.Sb_codec.Codec.value_bytes then
      invalid_arg "Oracle.Encoder.create: value size mismatch";
    { codec; op; value; calls = 0 }

  let get t i =
    t.calls <- t.calls + 1;
    Block.v ~source:t.op ~index:i (t.codec.Sb_codec.Codec.encode t.value i)

  let get_all t =
    match t.codec.Sb_codec.Codec.n with
    | None -> invalid_arg "Oracle.Encoder.get_all: rateless codec"
    | Some n -> List.init n (fun i -> get t i)

  let calls t = t.calls
end

module Decoder = struct
  type t = {
    codec : Sb_codec.Codec.t;
    groups : (int, (int * bytes) list ref) Hashtbl.t;
  }

  let create codec = { codec; groups = Hashtbl.create 8 }

  let group t g =
    match Hashtbl.find_opt t.groups g with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.groups g r;
      r

  let push t ~group:g ~index data =
    let r = group t g in
    r := (index, data) :: !r

  let group_size t ~group:g =
    List.length (Sb_codec.Codec.dedup_blocks !(group t g))

  let finish t ~group:g = t.codec.Sb_codec.Codec.decode !(group t g)
end
