type t = { ts : Timestamp.t; block : Block.t }

let v ~ts block = { ts; block }
let bits c = Block.bits c.block
let pp ppf c = Format.fprintf ppf "%a%a" Timestamp.pp c.ts Block.pp c.block
