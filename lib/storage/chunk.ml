type t = { ts : Timestamp.t; block : Block.t }

let v ~ts block = { ts; block }
let bits c = Block.bits c.block

let add c chunks =
  if
    List.exists
      (fun c' ->
        Timestamp.equal c'.ts c.ts
        && c'.block.Block.source = c.block.Block.source
        && c'.block.Block.index = c.block.Block.index)
      chunks
  then chunks
  else c :: chunks

let add_list cs chunks = List.fold_left (fun acc c -> add c acc) chunks cs
let pp ppf c = Format.fprintf ppf "%a%a" Timestamp.pp c.ts Block.pp c.block
