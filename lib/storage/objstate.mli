(** State of a base object, shaped after Algorithm 1 (line 8):
    [bo_i = <storedTS, Vp, Vf>].

    All four register emulations in this repository (ABD replication, pure
    erasure coding, the adaptive algorithm, and the Appendix-E safe
    register) fit this shape, which lets the simulator, the storage-cost
    accounting and the lower-bound adversary treat every algorithm
    uniformly:

    - [stored_ts] — the commit-barrier timestamp (meta-data, free);
    - [vp] — timestamped {e pieces} of possibly many values;
    - [vf] — a timestamped {e full replica}, stored as code blocks.

    The state is immutable; RMW functions return a fresh state. *)

type t = {
  stored_ts : Timestamp.t;
  vp : Chunk.t list;
  vf : Chunk.t list;
}

val init : ?vp:Chunk.t list -> ?vf:Chunk.t list -> unit -> t
(** Initial state: [stored_ts = Timestamp.zero] with the given chunk sets
    (both default to empty).  Algorithms seed [vp]/[vf] with blocks of the
    initial value [v0]. *)

val blocks : t -> Block.t list
(** All code blocks stored at the object ([vp] then [vf]). *)

val bits : t -> int
(** Storage cost of this object in bits (Definition 2 restricted to one
    base object): the sum of block sizes; timestamps are meta-data. *)

val chunk_count : t -> int

val with_stored_ts : t -> Timestamp.t -> t
(** Raises [stored_ts] to the maximum of the old and the given value —
    [stored_ts] is monotone in every algorithm (Observation 3). *)

val pp : Format.formatter -> t -> unit
