(** Timestamps [N x Pi] ordered lexicographically (Algorithm 1, line 1).

    A timestamp pairs a round number with the id of the client that chose
    it; ties on the round number are broken by client id, so timestamps
    chosen by distinct clients never compare equal unless both fields
    agree. *)

type t = { num : int; client : int }

val zero : t
(** The timestamp [(0, 0)] associated with the initial value [v0]. *)

val make : num:int -> client:int -> t

val compare : t -> t -> int
(** Lexicographic order: first [num], then [client]. *)

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t

val succ : t -> client:int -> t
(** [succ ts ~client] is the smallest timestamp of [client] strictly above
    [ts]: [(ts.num + 1, client)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
