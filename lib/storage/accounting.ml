let bits_of_blocks blocks =
  List.fold_left (fun acc b -> acc + Block.bits b) 0 blocks

let index_table ~source blocks =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if b.source = source then
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl b.index) in
        Hashtbl.replace tbl b.index (max prev (Block.bits b)))
    blocks;
  tbl

let indices_of ~source blocks =
  let tbl = index_table ~source blocks in
  (* sb-lint: allow hashtbl-order — collected then sorted *)
  List.sort Int.compare (Hashtbl.fold (fun i _ acc -> i :: acc) tbl [])

let contribution ~source blocks =
  let tbl = index_table ~source blocks in
  (* sb-lint: allow hashtbl-order — commutative sum of bits *)
  Hashtbl.fold (fun _ bits acc -> acc + bits) tbl 0
