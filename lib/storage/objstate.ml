type t = {
  stored_ts : Timestamp.t;
  vp : Chunk.t list;
  vf : Chunk.t list;
}

let init ?(vp = []) ?(vf = []) () = { stored_ts = Timestamp.zero; vp; vf }
let blocks t = List.map (fun (c : Chunk.t) -> c.block) (t.vp @ t.vf)
let bits t = List.fold_left (fun acc c -> acc + Chunk.bits c) 0 (t.vp @ t.vf)
let chunk_count t = List.length t.vp + List.length t.vf
let with_stored_ts t ts = { t with stored_ts = Timestamp.max t.stored_ts ts }

let pp ppf t =
  Format.fprintf ppf "@[<h>ts=%a vp=[%a] vf=[%a]@]" Timestamp.pp t.stored_ts
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Chunk.pp)
    t.vp
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Chunk.pp)
    t.vf
