type t = { source : int; index : int; data : bytes }

let v ~source ~index data =
  if source < 0 then invalid_arg "Block.v: negative source";
  if index < 0 then invalid_arg "Block.v: negative index";
  { source; index; data }

let initial ~index data = v ~source:0 ~index data
let bits b = 8 * Bytes.length b.data
let same_source a b = a.source = b.source

let pp ppf b =
  Format.fprintf ppf "⟨w%d,%d⟩:%dB" b.source b.index (Bytes.length b.data)
