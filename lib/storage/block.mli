(** Code-block instances tagged with their source (Definition 4).

    Every block that enters the storage carries the pair [(source, index)]
    identifying the write operation whose encoding oracle produced it and
    the block number it was produced with.  This realises the paper's
    source function explicitly: the storage-cost accounting and the
    lower-bound adversary trace blocks back to operations through these
    tags, never through block contents. *)

type t = private {
  source : int;  (** Operation id of the write whose oracle produced it;
                     [0] is reserved for the initial value [v0]. *)
  index : int;   (** The block number [i] of [E(v, i)]. *)
  data : bytes;  (** The block contents [e]. *)
}

val v : source:int -> index:int -> bytes -> t
(** Tags a freshly encoded block. *)

val initial : index:int -> bytes -> t
(** A block of the initial value [v0] (source operation 0). *)

val bits : t -> int
(** [|e|] in bits: the contribution of this block to the storage cost. *)

val same_source : t -> t -> bool
val pp : Format.formatter -> t -> unit
