type t = { num : int; client : int }

let zero = { num = 0; client = 0 }
let make ~num ~client = { num; client }

let compare a b =
  match Int.compare a.num b.num with
  | 0 -> Int.compare a.client b.client
  | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( >= ) a b = compare a b >= 0
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let succ ts ~client = { num = ts.num + 1; client }
let pp ppf ts = Format.fprintf ppf "(%d,c%d)" ts.num ts.client
let to_string ts = Format.asprintf "%a" pp ts
