(** Storage-cost measures (Definitions 2 and 6).

    The simulator assembles the lists of blocks visible at each component;
    this module turns them into the quantities the paper's proof and the
    experiments are stated in. *)

val bits_of_blocks : Block.t list -> int
(** Definition 2 over a block list: the sum of [|e|] over all block
    instances (duplicates count every time — the storage cost counts
    instances, not distinct blocks). *)

val indices_of : source:int -> Block.t list -> int list
(** [S(t, w)] of Definition 6: the sorted, distinct block numbers [i]
    such that a block with source [(w, i)] appears in the list. *)

val contribution : source:int -> Block.t list -> int
(** [||S(t, w)||] of Definition 6: the sum of block sizes over the
    {e distinct} indices of [source]'s blocks in the list.  When the same
    index appears more than once the largest instance is counted (all our
    codecs are symmetric so the sizes agree anyway). *)
