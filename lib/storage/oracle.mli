(** Encoding/decoding oracles (Definition 1).

    A [write(v)] invocation initialises an encoding oracle whose [get i]
    returns [E(v, i)] tagged with the write's operation id; a [read()]
    invocation initialises a decoding oracle whose [push]/[finish] realise
    the paper's [push(e, i)] / [done(i)] interface, where the second
    argument groups pushed blocks into candidate decode sets.

    Oracle-internal state (the value held by an encoder, the blocks pushed
    into a decoder) is {e not} part of the storage cost (Section 3.1). *)

module Encoder : sig
  type t

  val create : Sb_codec.Codec.t -> op:int -> value:bytes -> t
  (** [create codec ~op ~value] is [oracleE(c, w)] for write [w = op]. *)

  val get : t -> int -> Block.t
  (** [get t i] is [E(v, i)] tagged with source [(op, i)]. *)

  val get_all : t -> Block.t list
  (** All [n] blocks of a fixed-rate codec, [get t 0 .. get t (n-1)];
      raises [Invalid_argument] for a rateless codec. *)

  val calls : t -> int
  (** Number of [get] calls made so far (diagnostics). *)
end

module Decoder : sig
  type t

  val create : Sb_codec.Codec.t -> t
  (** [oracleD(c, r)] for a read operation. *)

  val push : t -> group:int -> index:int -> bytes -> unit
  (** [push t ~group ~index e] records [push(e, group)]-style input: block
      number [index] with contents [e], in candidate set [group] (the
      paper indexes pushes by a number [i]; register implementations use
      the timestamp's hash as the group). *)

  val group_size : t -> group:int -> int
  (** Number of distinct block indices pushed into [group]. *)

  val finish : t -> group:int -> bytes option
  (** The paper's [done(i)]: decode the blocks pushed into [group]. *)
end
