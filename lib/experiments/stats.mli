(** Summary statistics over integer samples (storage bits, round counts,
    step counts), used when an experiment reports across many seeds. *)

type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;  (** Population standard deviation; 0 for one sample. *)
  median : float;
}

val summarize : int list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val percentile : int list -> p:float -> float
(** Linear-interpolation percentile, [0 <= p <= 100]. *)

val pp : Format.formatter -> summary -> unit
(** Renders as ["min/median/max (mean ± sd)"]. *)
