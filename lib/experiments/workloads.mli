(** Workload generators for the experiments.

    A workload assigns each client a queue of operations; the paper's
    concurrency level [c] is realised by giving [c] distinct writer
    clients overlapping writes. *)

val distinct_value : value_bytes:int -> int -> bytes
(** [distinct_value ~value_bytes i] is a value unique to [i], never equal
    to the all-zero initial value, with every code piece differing across
    values — so histories attribute read results unambiguously. *)

val writers_only :
  value_bytes:int -> c:int -> writes_each:int -> Sb_sim.Trace.op_kind list array
(** [c] writer clients, each performing [writes_each] writes of distinct
    values. *)

val writers_and_readers :
  value_bytes:int ->
  writers:int ->
  writes_each:int ->
  readers:int ->
  reads_each:int ->
  Sb_sim.Trace.op_kind list array
(** Writers first (clients [0 .. writers-1]), then reader clients. *)

val value_index : value_bytes:int -> bytes -> int option
(** Inverse of {!distinct_value} by search over the first 4096 indices
    (diagnostics). *)
