(** Time series of simulation quantities, sampled at every scheduling
    decision.

    Used to plot storage trajectories (the paper's "storage cost at time
    t", Definition 2) as text charts, and to compute peaks over runs.
    The sampler wraps any scheduling policy, so recording is transparent
    to the run. *)

type t
(** An ordered sequence of [(time, value)] samples. *)

val record :
  probe:(Sb_sim.Runtime.world -> int) ->
  Sb_sim.Runtime.policy ->
  Sb_sim.Runtime.policy * (unit -> t)
(** [record ~probe policy] is [(policy', get)]: [policy'] behaves like
    [policy] but samples [probe world] before every decision; [get ()]
    returns the samples collected so far. *)

val samples : t -> (int * int) list
val length : t -> int
val peak : t -> int
(** Largest sampled value (0 for an empty series). *)

val final : t -> int
(** Last sampled value (0 for an empty series). *)

val at_fraction : t -> float -> int
(** [at_fraction s 0.5] is the sample value halfway through the series
    (by sample index).  Raises [Invalid_argument] outside [0, 1] or on
    an empty series. *)

val sparkline : ?width:int -> ?height:int -> t -> string
(** A text chart ([width] columns, default 60; [height] rows, default
    12): each column shows the maximum sampled value in its bucket,
    with a y-axis of absolute values.  Returns [""] for an empty
    series. *)
