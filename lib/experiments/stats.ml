type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  median : float;
}

let percentile samples ~p =
  if samples = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.of_list (List.sort Int.compare samples) in
  let n = Array.length sorted in
  if n = 1 then float_of_int sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ((1.0 -. frac) *. float_of_int sorted.(lo)) +. (frac *. float_of_int sorted.(hi))
  end

let summarize samples =
  match samples with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    let count = List.length samples in
    let fcount = float_of_int count in
    let mean = float_of_int (List.fold_left ( + ) 0 samples) /. fcount in
    let var =
      List.fold_left
        (fun acc x ->
          let d = float_of_int x -. mean in
          acc +. (d *. d))
        0.0 samples
      /. fcount
    in
    {
      count;
      min = List.fold_left min max_int samples;
      max = List.fold_left max min_int samples;
      mean;
      stddev = sqrt var;
      median = percentile samples ~p:50.0;
    }

let pp ppf s =
  Format.fprintf ppf "%d/%.0f/%d (%.1f ± %.1f)" s.min s.median s.max s.mean s.stddev
