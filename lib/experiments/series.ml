type t = (int * int) list (* newest first internally *)

let record ~probe policy =
  let acc = ref [] in
  let policy' w =
    acc := (Sb_sim.Runtime.time w, probe w) :: !acc;
    policy w
  in
  (policy', fun () -> !acc)

let samples t = List.rev t
let length t = List.length t
let peak t = List.fold_left (fun m (_, v) -> max m v) 0 t
let final t = match t with (_, v) :: _ -> v | [] -> 0

let at_fraction t frac =
  if frac < 0.0 || frac > 1.0 then invalid_arg "Series.at_fraction: out of range";
  match samples t with
  | [] -> invalid_arg "Series.at_fraction: empty series"
  | s ->
    let arr = Array.of_list s in
    let idx = int_of_float (frac *. float_of_int (Array.length arr - 1)) in
    snd arr.(idx)

let sparkline ?(width = 60) ?(height = 12) t =
  match samples t with
  | [] -> ""
  | s ->
    let arr = Array.of_list s in
    let total = Array.length arr in
    let top = peak t in
    if top = 0 then ""
    else begin
      let bucket = max 1 (total / width) in
      let columns = min width (((total - 1) / bucket) + 1) in
      let column_max col =
        let lo = col * bucket and hi = min total ((col + 1) * bucket) in
        let m = ref 0 in
        for i = lo to hi - 1 do
          m := max !m (snd arr.(i))
        done;
        !m
      in
      let buf = Buffer.create ((columns + 12) * height) in
      for row = 0 to height - 1 do
        let threshold = top * (height - row) / height in
        Buffer.add_string buf (Printf.sprintf "%8d |" threshold);
        for col = 0 to columns - 1 do
          Buffer.add_char buf
            (if column_max col >= threshold && threshold > 0 then '#' else ' ')
        done;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (Printf.sprintf "         +%s\n" (String.make columns '-'));
      Buffer.contents buf
    end
