(** The per-claim experiments of the reproduction (see DESIGN.md §4 and
    EXPERIMENTS.md).

    The paper is a theory paper: its "evaluation" is the set of analytic
    bounds in Theorems 1–2, Corollaries 2–3 and 7, and the behaviour of
    the adversary of Definition 7.  Each function below regenerates one
    of those claims as a measured table; [ok] records whether the
    measured shape matches the paper (e.g. bounds respected, growth
    linear, crossovers where predicted). *)

type outcome = {
  id : string;
  title : string;
  table : Sb_util.Table.t;
  ok : bool;
  notes : string list;
}

val default_value_bytes : int

val e1_concurrency_blowup :
  ?value_bytes:int -> ?f:int -> ?cs:int list -> unit -> outcome
(** Theorem 1 branch (b) / Corollary 2: a purely erasure-coded register
    driven by adversary Ad stores Omega(c * D) bits: the measured storage
    grows with the concurrency level and always dominates
    [min((f+1) ell, c (D - ell + 1))]. *)

val e2_freeze_branch : ?value_bytes:int -> ?f:int -> unit -> outcome
(** Theorem 1 branch (a): against replication-style algorithms Ad
    freezes more than [f] objects holding [>= ell] bits each, pinning
    [(f+1) * ell] bits — the Omega(f * D) end of the bound. *)

val e3_adaptive_bound :
  ?value_bytes:int -> ?f:int -> ?k:int -> ?cs:int list -> unit -> outcome
(** Theorem 2: the adaptive algorithm's measured storage never exceeds
    [min((c+1)(2f+k) D/k, 2 (2f+k) D)] under fair random schedules, and
    every history is strongly regular. *)

val e4_eventual_gc :
  ?value_bytes:int -> ?f:int -> ?k:int -> ?seeds:int list -> unit -> outcome
(** Theorem 2, final clause: once finitely many writes all complete, the
    adaptive algorithm's storage shrinks to at most [(2f+k) D / k]
    bits. *)

val e5_crossover :
  ?value_bytes:int -> ?f:int -> ?cs:int list -> unit -> outcome
(** Section 1 motivation: replication costs Theta(f D) regardless of
    concurrency, pure erasure coding costs Theta(c D) under concurrency,
    and the adaptive algorithm tracks the minimum of the two, with the
    crossover near [c ~ f]. *)

val e6_f_sweep : ?value_bytes:int -> ?c:int -> ?fs:int list -> unit -> outcome
(** The bound in [f]: with [k = f] and fixed [c], storage of replication
    grows linearly in [f] while the adaptive algorithm's (low-concurrency)
    storage stays near [(c+1) * 3D]. *)

val e7_k_ablation : ?value_bytes:int -> ?f:int -> ?c:int -> ?ks:int list -> unit -> outcome
(** Choice of [k] (Section 5): [k = 1] degenerates to replication-like
    cost, larger [k] amortises; quiescent storage is [(2f+k) D / k]. *)

val e8_safe_constant : ?value_bytes:int -> ?f:int -> ?k:int -> ?cs:int list -> unit -> outcome
(** Corollary 7: the Appendix-E safe register stores exactly
    [n D / k = (2f/k + 1) D] bits regardless of concurrency — below the
    regular-register lower bound, which safe semantics escape. *)

val e9_read_rounds :
  ?value_bytes:int -> ?f:int -> ?k:int -> ?writers:int list -> unit -> outcome
(** FW-termination (Theorem 2): writes are wait-free; reads terminate
    once writes are finite, but may need more [readValue] rounds the more
    writes run concurrently. *)

val e10_liveness_under_ad :
  ?value_bytes:int -> ?f:int -> ?k:int -> ?c:int -> unit -> outcome
(** Lemma 1/Corollary 1 vs Appendix E: under Ad no regular-register
    write ever returns, while the wait-free safe register keeps
    completing writes — the lower bound truly separates the two
    semantics. *)

val e11_channel_storage :
  ?value_bytes:int -> ?f:int -> ?k:int -> ?readers:int list -> unit -> outcome
(** Section 3.2: over the message-passing emulation, response snapshots
    carry code blocks, so channel storage grows with read concurrency
    and overtakes server-side storage — the reason the paper's cost
    model counts channel contents. *)

val e12_adversary_ablation : ?value_bytes:int -> ?f:int -> ?c:int -> unit -> outcome
(** Ablation of Definition 7: naive unfair policies (starve everything,
    deliver a fixed budget, starve one object) either pin far less
    storage than Ad or fail to deny progress — Ad's selective
    rule-1 deliveries are what force the bound. *)

val e13_premature_gc : ?value_bytes:int -> ?f:int -> ?k:int -> unit -> outcome
(** Negative control for the whole verification pipeline: a register
    that garbage-collects below an incomplete write's own timestamp —
    the unsafe shortcut the paper's introduction warns against —
    produces weak-regularity violations that the history checkers
    catch, while the correct barrier version never does. *)

val e14_indistinguishability :
  ?value_bytes:int -> ?f:int -> ?c:int -> unit -> outcome
(** Claim 1 and Lemma 1, executable: every write stalled by Ad has
    fewer than [D] stored bits, so a colliding value exists (computed
    from the Reed–Solomon generator's kernel); replaying the identical
    schedule with the substituted value leaves all base objects
    byte-identical — the indistinguishability at the heart of the lower
    bound. *)

val e15_version_bound :
  ?value_bytes:int -> ?f:int -> ?k:int -> ?c:int -> ?deltas:int list -> unit -> outcome
(** The bounded-version register family ([6]): storage obeys
    [(delta+1)(2f+k)D/k] for every [delta], but read latency degrades
    once the write concurrency exceeds [delta] — provisioning
    [delta >= c] is the Θ(cD) storage the lower bound demands. *)

val e16_lower_bound_mp :
  ?value_bytes:int -> ?f:int -> ?cs:int list -> unit -> outcome
(** Theorem 1 over the message-passing emulation with channel-inclusive
    accounting: the adversary still pins the bound and denies every
    write — parking blocks in the network does not help
    (Section 3.2). *)

val e17_ell_sweep : ?value_bytes:int -> ?f:int -> ?c:int -> unit -> outcome
(** Ablation of Theorem 1's free parameter: sweeping the adversary
    threshold [ell] shows the bound [min((f+1)ell, c(D-ell+1))] holds
    throughout and is maximised near the proof's choice [ell = D/2]. *)

val all : unit -> outcome list
(** Every experiment with default parameters, in order. *)

val print_outcome : outcome -> unit
(** Renders the table with its title, pass/fail flag and notes. *)

val to_markdown : outcome list -> string
(** A self-contained markdown report: one section per experiment with
    the rendered table and the shape verdict. *)
