module R = Sb_sim.Runtime

type measurement = {
  algorithm : string;
  steps : int;
  quiescent : bool;
  max_obj_bits : int;
  max_total_bits : int;
  final_obj_bits : int;
  completed_writes : int;
  completed_reads : int;
  invoked_writes : int;
  invoked_reads : int;
  max_read_rounds : int;
  history : Sb_spec.History.t;
  weak : Sb_spec.Regularity.verdict;
  strong : Sb_spec.Regularity.verdict;
}

let measure ?(seed = 1) ?(max_steps = 2_000_000) ?policy
    ?(base_model = Sb_baseobj.Model.Rmw) ?byz ~algorithm
    ~(cfg : Sb_registers.Common.config) ~workload () =
  let policy = match policy with Some p -> p | None -> R.random_policy ~seed () in
  let w =
    R.create ~seed ~base_model ?byz ~algorithm ~n:cfg.n ~f:cfg.f ~workload ()
  in
  let outcome = R.run ~max_steps w policy in
  let ops = Sb_sim.Trace.operations (R.trace w) in
  let count pred = List.length (List.filter pred ops) in
  let is_write (_, kind, _, _, _) =
    match kind with Sb_sim.Trace.Write _ -> true | _ -> false
  in
  let is_read op = not (is_write op) in
  let returned (_, _, _, ret, _) = ret <> None in
  let history =
    Sb_spec.History.of_trace ~initial:(Sb_registers.Common.initial_value cfg)
      (R.trace w)
  in
  {
    algorithm = algorithm.R.name;
    steps = outcome.steps;
    quiescent = outcome.quiescent;
    max_obj_bits = R.max_bits_objects w;
    max_total_bits = R.max_bits_total w;
    final_obj_bits = R.storage_bits_objects w;
    completed_writes = count (fun op -> is_write op && returned op);
    completed_reads = count (fun op -> is_read op && returned op);
    invoked_writes = count is_write;
    invoked_reads = count is_read;
    max_read_rounds = R.max_read_rounds w;
    history;
    weak = Sb_spec.Regularity.check_weak history;
    strong = Sb_spec.Regularity.check_strong history;
  }

let measure_many ?(seeds = [ 1; 2; 3; 4; 5 ]) ?max_steps ?base_model ?byz
    ~algorithm ~cfg ~workload () =
  List.map
    (fun seed ->
      measure ~seed ?max_steps ?base_model ?byz ~algorithm ~cfg ~workload ())
    seeds

let worst ms =
  match ms with
  | [] -> invalid_arg "Runs.worst: no measurements"
  | m :: rest ->
    List.fold_left (fun best m -> if m.max_obj_bits > best.max_obj_bits then m else best) m rest
