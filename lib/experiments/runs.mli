(** One-stop measurement runner used by every experiment.

    Runs an algorithm on a workload under a scheduling policy and
    collects the quantities the paper's claims are stated in: the two
    storage maxima, the final (post-GC) storage, operation completion
    counts, read round counts, and the consistency verdicts of the
    resulting history. *)

type measurement = {
  algorithm : string;
  steps : int;
  quiescent : bool;
  max_obj_bits : int;     (** Max over time of base-object storage. *)
  max_total_bits : int;   (** Same, including in-flight RMW payloads. *)
  final_obj_bits : int;   (** Base-object storage when the run ended. *)
  completed_writes : int;
  completed_reads : int;
  invoked_writes : int;
  invoked_reads : int;
  max_read_rounds : int;  (** Largest number of [readValue] rounds any
                              completed read needed. *)
  history : Sb_spec.History.t;
  weak : Sb_spec.Regularity.verdict;
  strong : Sb_spec.Regularity.verdict;
}

val measure :
  ?seed:int ->
  ?max_steps:int ->
  ?policy:Sb_sim.Runtime.policy ->
  ?base_model:Sb_baseobj.Model.t ->
  ?byz:Sb_baseobj.Model.byz_policy ->
  algorithm:Sb_sim.Runtime.algorithm ->
  cfg:Sb_registers.Common.config ->
  workload:Sb_sim.Trace.op_kind list array ->
  unit ->
  measurement
(** Defaults: the fair seeded random policy, 2,000,000 steps. *)

val measure_many :
  ?seeds:int list ->
  ?max_steps:int ->
  ?base_model:Sb_baseobj.Model.t ->
  ?byz:Sb_baseobj.Model.byz_policy ->
  algorithm:Sb_sim.Runtime.algorithm ->
  cfg:Sb_registers.Common.config ->
  workload:Sb_sim.Trace.op_kind list array ->
  unit ->
  measurement list
(** The same workload under several random schedules (defaults: seeds
    1–5); experiments report the worst (max-storage) run, matching the
    paper's worst-case storage-cost definition. *)

val worst : measurement list -> measurement
(** The measurement with the largest [max_obj_bits]. *)
