let distinct_value ~value_bytes i = Sb_util.Values.distinct ~value_bytes i

let writers_only ~value_bytes ~c ~writes_each =
  Array.init c (fun i ->
      List.init writes_each (fun j ->
          Sb_sim.Trace.Write (distinct_value ~value_bytes ((i * writes_each) + j))))

let writers_and_readers ~value_bytes ~writers ~writes_each ~readers ~reads_each =
  let ws = writers_only ~value_bytes ~c:writers ~writes_each in
  let rs = Array.init readers (fun _ -> List.init reads_each (fun _ -> Sb_sim.Trace.Read)) in
  Array.append ws rs

let value_index ~value_bytes v =
  let rec go i =
    if i >= 4096 then None
    else if Bytes.equal (distinct_value ~value_bytes i) v then Some i
    else go (i + 1)
  in
  go 0
