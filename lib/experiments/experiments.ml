module Codec = Sb_codec.Codec
module Table = Sb_util.Table

type outcome = {
  id : string;
  title : string;
  table : Table.t;
  ok : bool;
  notes : string list;
}

let default_value_bytes = 64

let rs ~value_bytes ~k ~n =
  if n <= 256 then Codec.rs_vandermonde ~value_bytes ~k ~n
  else Codec.rs_vandermonde16 ~value_bytes ~k ~n

let coded_cfg ~value_bytes ~f ~k =
  let n = (2 * f) + k in
  { Sb_registers.Common.n; f; codec = rs ~value_bytes ~k ~n }

let abd_cfg ~value_bytes ~f =
  let n = (2 * f) + 1 in
  { Sb_registers.Common.n; f; codec = Codec.replication ~value_bytes ~n }

let d_bits ~value_bytes = 8 * value_bytes

let branch_name = function
  | Sb_adversary.Lower_bound.Frozen_objects -> "frozen"
  | Sb_adversary.Lower_bound.Saturated_writes -> "saturated"
  | Sb_adversary.Lower_bound.Exhausted -> "exhausted"

let verdict_ok = function Sb_spec.Regularity.Ok -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* E1: Theorem 1, storage grows linearly with concurrency              *)
(* ------------------------------------------------------------------ *)

let e1_concurrency_blowup ?(value_bytes = default_value_bytes) ?(f = 8)
    ?(cs = [ 1; 2; 3; 4; 6; 8 ]) () =
  let k = f in
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let table =
    Table.create
      ~title:"E1  Adversary Ad vs pure erasure coding: storage grows with c"
      [
        ("c", Table.Right); ("branch", Table.Left); ("steps", Table.Right);
        ("max_storage", Table.Right); ("bound", Table.Right); ("cD/2", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun c ->
        let algo = Sb_registers.Adaptive.make_unbounded cfg in
        let r = Sb_adversary.Lower_bound.run ~algorithm:algo ~cfg ~c () in
        Table.add_row table
          [
            string_of_int c; branch_name r.branch; string_of_int r.steps;
            string_of_int r.max_total_bits; string_of_int r.lower_bound_bits;
            string_of_int (c * d / 2);
          ];
        r)
      cs
  in
  let bound_ok =
    List.for_all
      (fun (r : Sb_adversary.Lower_bound.result) ->
        r.max_total_bits >= r.lower_bound_bits)
      rows
  in
  let no_completion =
    List.for_all (fun (r : Sb_adversary.Lower_bound.result) -> r.completed_writes = 0) rows
  in
  let grows =
    let storages = List.map (fun (r : Sb_adversary.Lower_bound.result) -> r.max_total_bits) rows in
    List.length storages < 2
    || List.nth storages (List.length storages - 1) > List.hd storages
  in
  {
    id = "E1";
    title = "Lower bound, saturation branch (Theorem 1 / Corollary 2)";
    table;
    ok = bound_ok && no_completion && grows;
    notes =
      [
        Printf.sprintf "D=%d bits, f=k=%d, n=%d, ell=D/2=%d" d f cfg.n (d / 2);
        "Ad prevents every write from returning while storage exceeds the bound.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E2: Theorem 1, freeze branch against replication                    *)
(* ------------------------------------------------------------------ *)

let e2_freeze_branch ?(value_bytes = default_value_bytes) ?(f = 4) () =
  let d = d_bits ~value_bytes in
  let ell = d / 2 in
  let c = f + 2 in
  let algos =
    [
      ("abd-replication", Sb_registers.Abd.make (abd_cfg ~value_bytes ~f), abd_cfg ~value_bytes ~f);
      ( "adaptive(k=2)",
        Sb_registers.Adaptive.make (coded_cfg ~value_bytes ~f ~k:2),
        coded_cfg ~value_bytes ~f ~k:2 );
    ]
  in
  let table =
    Table.create ~title:"E2  Adversary Ad freeze branch: f+1 objects hold >= ell bits"
      [
        ("algorithm", Table.Left); ("branch", Table.Left); ("frozen", Table.Right);
        ("f", Table.Right); ("max_obj_bits", Table.Right); ("(f+1)*ell", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun (name, algo, cfg) ->
        let r = Sb_adversary.Lower_bound.run ~algorithm:algo ~cfg ~c () in
        Table.add_row table
          [
            name; branch_name r.branch; string_of_int r.final_frozen;
            string_of_int f; string_of_int r.max_obj_bits;
            string_of_int ((f + 1) * ell);
          ];
        r)
      algos
  in
  let ok =
    List.for_all
      (fun (r : Sb_adversary.Lower_bound.result) ->
        r.branch = Sb_adversary.Lower_bound.Frozen_objects
        && r.max_obj_bits >= (f + 1) * ell)
      rows
  in
  {
    id = "E2";
    title = "Lower bound, freeze branch (Theorem 1)";
    table;
    ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d, ell=D/2=%d, c=%d" d f ell c;
        "Replication stores D bits in every object, so |F| > f from the start \
         (Corollary 2's exemption).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E3: Theorem 2, adaptive storage bound under fair schedules          *)
(* ------------------------------------------------------------------ *)

(* Theorem 2 / Lemmas 6-7: with fewer than k-1 concurrent writes every
   object holds at most c+1 pieces (and Vf stays empty); otherwise each
   object holds at most 2k pieces (k in Vp, k in Vf).  Pieces are
   ceil(D/k) bits when k does not divide the value size, so the bound is
   computed from the codec's actual piece size. *)
let adaptive_bound_bits ~(cfg : Sb_registers.Common.config) ~c =
  let k = cfg.codec.Codec.k in
  let piece_bits = Codec.block_bits cfg.codec 0 in
  let pieces_per_obj = if c < k - 1 then c + 1 else 2 * k in
  cfg.n * pieces_per_obj * piece_bits

(* The eventual (post-GC) storage of Theorem 2: one piece per object. *)
let quiescent_bound_bits (cfg : Sb_registers.Common.config) =
  cfg.n * Codec.block_bits cfg.codec 0

let e3_adaptive_bound ?(value_bytes = default_value_bytes) ?(f = 4) ?(k = 4)
    ?(cs = [ 1; 2; 3; 4; 6; 8 ]) () =
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let table =
    Table.create ~title:"E3  Adaptive algorithm: measured storage vs Theorem 2 bound"
      [
        ("c", Table.Right); ("max_obj_bits", Table.Right); ("bound", Table.Right);
        ("paper_(2f+k)^2D", Table.Right); ("strongly_regular", Table.Left);
      ]
  in
  let algo = Sb_registers.Adaptive.make cfg in
  let rows =
    List.map
      (fun c ->
        let workload =
          Workloads.writers_and_readers ~value_bytes ~writers:c ~writes_each:3
            ~readers:2 ~reads_each:2
        in
        let ms = Runs.measure_many ~algorithm:algo ~cfg ~workload () in
        let m = Runs.worst ms in
        let bound = adaptive_bound_bits ~cfg ~c in
        let all_strong = List.for_all (fun m -> verdict_ok m.Runs.strong) ms in
        Table.add_row table
          [
            string_of_int c; string_of_int m.Runs.max_obj_bits; string_of_int bound;
            string_of_int (cfg.n * cfg.n * d);
            (if all_strong then "yes" else "VIOLATION");
          ];
        (m, bound, all_strong))
      cs
  in
  let ok =
    List.for_all
      (fun ((m : Runs.measurement), bound, strong) ->
        m.max_obj_bits <= bound && strong && m.completed_writes = m.invoked_writes)
      rows
  in
  {
    id = "E3";
    title = "Adaptive storage bound (Theorem 2)";
    table;
    ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d, k=%d, n=%d; worst of 5 random schedules" d f k cfg.n;
        "bound = min((c+1)(2f+k)D/k, 2(2f+k)D); the paper states the looser (2f+k)^2 D.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E4: eventual GC down to (2f+k)D/k                                   *)
(* ------------------------------------------------------------------ *)

let e4_eventual_gc ?(value_bytes = default_value_bytes) ?(f = 4) ?(k = 4)
    ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) () =
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let quiescent_bound = quiescent_bound_bits cfg in
  let algo = Sb_registers.Adaptive.make cfg in
  let workload = Workloads.writers_only ~value_bytes ~c:4 ~writes_each:3 in
  let table =
    Table.create ~title:"E4  Eventual storage after all writes complete"
      [
        ("seed", Table.Right); ("max_obj_bits", Table.Right);
        ("final_obj_bits", Table.Right); ("(2f+k)D/k", Table.Right);
        ("quiescent", Table.Left);
      ]
  in
  let rows =
    List.map
      (fun seed ->
        let m = Runs.measure ~seed ~algorithm:algo ~cfg ~workload () in
        Table.add_row table
          [
            string_of_int seed; string_of_int m.Runs.max_obj_bits;
            string_of_int m.Runs.final_obj_bits; string_of_int quiescent_bound;
            (if m.Runs.quiescent then "yes" else "no");
          ];
        m)
      seeds
  in
  let ok =
    List.for_all
      (fun (m : Runs.measurement) ->
        m.quiescent && m.final_obj_bits <= quiescent_bound
        && m.completed_writes = m.invoked_writes)
      rows
  in
  {
    id = "E4";
    title = "Eventual garbage collection (Theorem 2, final clause)";
    table;
    ok;
    notes = [ Printf.sprintf "D=%d bits, f=%d, k=%d, n=%d, 4 writers x 3 writes" d f k cfg.n ];
  }

(* ------------------------------------------------------------------ *)
(* E5: crossover between replication, pure EC, adaptive                *)
(* ------------------------------------------------------------------ *)

let e5_crossover ?(value_bytes = default_value_bytes) ?(f = 4)
    ?(cs = [ 1; 2; 4; 6; 8; 12 ]) () =
  let k = f in
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let cfg_abd = abd_cfg ~value_bytes ~f in
  let d = d_bits ~value_bytes in
  let table =
    Table.create
      ~title:"E5  Max storage (bits) vs concurrency: who wins where"
      [
        ("c", Table.Right); ("replication", Table.Right); ("pure-ec", Table.Right);
        ("adaptive", Table.Right); ("winner", Table.Left);
      ]
  in
  let measure_algo algo cfg c =
    let workload =
      Workloads.writers_only ~value_bytes ~c ~writes_each:3
    in
    (Runs.worst (Runs.measure_many ~algorithm:algo ~cfg ~workload ())).Runs.max_obj_bits
  in
  let rows =
    List.map
      (fun c ->
        let abd = measure_algo (Sb_registers.Abd.make cfg_abd) cfg_abd c in
        let ec = measure_algo (Sb_registers.Adaptive.make_unbounded cfg) cfg c in
        let ad = measure_algo (Sb_registers.Adaptive.make cfg) cfg c in
        let winner = if abd <= ec then "replication" else "erasure-coding" in
        Table.add_row table
          [
            string_of_int c; string_of_int abd; string_of_int ec; string_of_int ad;
            winner;
          ];
        (c, abd, ec, ad))
      cs
  in
  (* Shape checks: replication is flat; pure EC grows; the adaptive
     algorithm is never much above the best of the two. *)
  let flat =
    match rows with
    | (_, first, _, _) :: _ ->
      List.for_all (fun (_, abd, _, _) -> abd = first) rows
    | [] -> false
  in
  let ec_grows =
    match (rows, List.rev rows) with
    | (_, _, first, _) :: _, (_, _, last, _) :: _ -> last > first
    | _ -> false
  in
  let adaptive_tracks =
    List.for_all
      (fun (_, abd, ec, ad) ->
        (* within a small constant of the minimum; the adaptive cap is
           2(2f+k)D vs replication's (2f+1)D, a factor <= 3 for k=f *)
        ad <= 3 * min abd ec)
      rows
  in
  {
    id = "E5";
    title = "Replication vs coding crossover (Section 1)";
    table;
    ok = flat && ec_grows && adaptive_tracks;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d; replication n=%d, coded n=%d, k=%d" d f
          cfg_abd.n cfg.n k;
        "Worst of 5 random schedules per cell.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E6: sweep over f                                                    *)
(* ------------------------------------------------------------------ *)

let e6_f_sweep ?(value_bytes = default_value_bytes) ?(c = 3) ?(fs = [ 1; 2; 4; 6; 8 ]) () =
  let d = d_bits ~value_bytes in
  let table =
    Table.create ~title:"E6  Max storage (bits) vs fault tolerance f (k = f)"
      [
        ("f", Table.Right); ("replication", Table.Right); ("adaptive", Table.Right);
        ("Thm2_bound", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun f ->
        let k = max f 1 in
        let cfg = coded_cfg ~value_bytes ~f ~k in
        let cfg_abd = abd_cfg ~value_bytes ~f in
        let workload = Workloads.writers_only ~value_bytes ~c ~writes_each:2 in
        let abd =
          (Runs.worst
             (Runs.measure_many ~algorithm:(Sb_registers.Abd.make cfg_abd)
                ~cfg:cfg_abd ~workload ()))
            .Runs.max_obj_bits
        in
        let ad =
          (Runs.worst
             (Runs.measure_many ~algorithm:(Sb_registers.Adaptive.make cfg) ~cfg
                ~workload ()))
            .Runs.max_obj_bits
        in
        let bound = adaptive_bound_bits ~cfg ~c in
        Table.add_row table
          [ string_of_int f; string_of_int abd; string_of_int ad; string_of_int bound ];
        (abd, ad, bound))
      fs
  in
  let abd_grows =
    match (rows, List.rev rows) with
    | (first, _, _) :: _, (last, _, _) :: _ -> last > first
    | _ -> false
  in
  let adaptive_bounded = List.for_all (fun (_, ad, bound) -> ad <= bound) rows in
  {
    id = "E6";
    title = "Storage vs f at fixed concurrency";
    table;
    ok = abd_grows && adaptive_bounded;
    notes =
      [
        Printf.sprintf
          "D=%d bits, c=%d; adaptive uses k=f, so for c < k-1 the bound \
           (c+1)(2f+k)D/k = (c+1)*3D is f-independent while replication pays \
           (2f+1)D" d c;
      ];
  }

(* ------------------------------------------------------------------ *)
(* E7: ablation over k                                                 *)
(* ------------------------------------------------------------------ *)

let e7_k_ablation ?(value_bytes = default_value_bytes) ?(f = 4) ?(c = 4)
    ?(ks = [ 1; 2; 4; 8 ]) () =
  let d = d_bits ~value_bytes in
  let table =
    Table.create ~title:"E7  Adaptive algorithm vs code dimension k (n = 2f + k)"
      [
        ("k", Table.Right); ("n", Table.Right); ("max_obj_bits", Table.Right);
        ("final_obj_bits", Table.Right); ("(2f+k)D/k", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun k ->
        let cfg = coded_cfg ~value_bytes ~f ~k in
        let workload = Workloads.writers_only ~value_bytes ~c ~writes_each:2 in
        let m =
          Runs.worst
            (Runs.measure_many ~algorithm:(Sb_registers.Adaptive.make cfg) ~cfg
               ~workload ())
        in
        let quiescent_bound = quiescent_bound_bits cfg in
        Table.add_row table
          [
            string_of_int k; string_of_int cfg.n; string_of_int m.Runs.max_obj_bits;
            string_of_int m.Runs.final_obj_bits; string_of_int quiescent_bound;
          ];
        (k, m, quiescent_bound))
      ks
  in
  let ok =
    List.for_all
      (fun (_, (m : Runs.measurement), qb) ->
        m.final_obj_bits <= qb && m.completed_writes = m.invoked_writes)
      rows
  in
  {
    id = "E7";
    title = "Ablation: choice of k";
    table;
    ok;
    notes = [ Printf.sprintf "D=%d bits, f=%d, c=%d; worst of 5 random schedules" d f c ];
  }

(* ------------------------------------------------------------------ *)
(* E8: safe register constant storage                                  *)
(* ------------------------------------------------------------------ *)

let e8_safe_constant ?(value_bytes = default_value_bytes) ?(f = 4) ?(k = 4)
    ?(cs = [ 1; 2; 4; 8; 16 ]) () =
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let expected = quiescent_bound_bits cfg in
  let algo = Sb_registers.Safe_register.make cfg in
  let table =
    Table.create ~title:"E8  Safe register (Appendix E): storage is constant in c"
      [
        ("c", Table.Right); ("max_obj_bits", Table.Right); ("nD/k", Table.Right);
        ("writes_done", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun c ->
        let workload = Workloads.writers_only ~value_bytes ~c ~writes_each:2 in
        let m = Runs.worst (Runs.measure_many ~algorithm:algo ~cfg ~workload ()) in
        Table.add_row table
          [
            string_of_int c; string_of_int m.Runs.max_obj_bits; string_of_int expected;
            string_of_int m.Runs.completed_writes;
          ];
        m)
      cs
  in
  let ok =
    List.for_all
      (fun (m : Runs.measurement) ->
        m.max_obj_bits = expected && m.completed_writes = m.invoked_writes)
      rows
  in
  {
    id = "E8";
    title = "Safe register storage (Corollary 7)";
    table;
    ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d, k=%d, n=%d: nD/k = (2f/k+1)D = %d bits" d f k
          cfg.n expected;
        "Below the regular-register lower bound: safe semantics escape it.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E9: FW-termination and read round counts                            *)
(* ------------------------------------------------------------------ *)

let e9_read_rounds ?(value_bytes = default_value_bytes) ?(f = 4) ?(k = 4)
    ?(writers = [ 1; 2; 4; 8 ]) () =
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let algo = Sb_registers.Adaptive.make cfg in
  let table =
    Table.create ~title:"E9  FW-termination: read rounds vs concurrent writers"
      [
        ("writers", Table.Right); ("reads_done", Table.Right);
        ("reads_invoked", Table.Right); ("max_read_rounds", Table.Right);
        ("writes_done", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun wr ->
        let workload =
          Workloads.writers_and_readers ~value_bytes ~writers:wr ~writes_each:3
            ~readers:3 ~reads_each:3
        in
        let ms = Runs.measure_many ~algorithm:algo ~cfg ~workload () in
        let reads_done = List.fold_left (fun a m -> a + m.Runs.completed_reads) 0 ms in
        let reads_inv = List.fold_left (fun a m -> a + m.Runs.invoked_reads) 0 ms in
        let max_rounds = List.fold_left (fun a m -> max a m.Runs.max_read_rounds) 0 ms in
        let writes_done = List.fold_left (fun a m -> a + m.Runs.completed_writes) 0 ms in
        Table.add_row table
          [
            string_of_int wr; string_of_int reads_done; string_of_int reads_inv;
            string_of_int max_rounds; string_of_int writes_done;
          ];
        (reads_done, reads_inv, writes_done,
         List.fold_left (fun a m -> a + m.Runs.invoked_writes) 0 ms))
      writers
  in
  let ok =
    List.for_all
      (fun (rd, ri, wd, wi) -> rd = ri && wd = wi)
      rows
  in
  {
    id = "E9";
    title = "FW-termination (Theorem 2 liveness)";
    table;
    ok;
    notes =
      [
        "Finitely many writes: every read returns; rounds grow with write \
         concurrency (sum over 5 seeds).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E10: liveness under Ad — safe escapes, regular algorithms do not    *)
(* ------------------------------------------------------------------ *)

let e10_liveness_under_ad ?(value_bytes = default_value_bytes) ?(f = 4) ?(k = 4)
    ?(c = 4) () =
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let cfg_abd = abd_cfg ~value_bytes ~f in
  let algos =
    [
      ("abd-replication", Sb_registers.Abd.make cfg_abd, cfg_abd, false);
      ("pure-ec", Sb_registers.Adaptive.make_unbounded cfg, cfg, false);
      ("adaptive", Sb_registers.Adaptive.make cfg, cfg, false);
      ("safe (App. E)", Sb_registers.Safe_register.make cfg, cfg, true);
    ]
  in
  let table =
    Table.create ~title:"E10  Writes completed within 200k adversary steps"
      [
        ("algorithm", Table.Left); ("semantics", Table.Left);
        ("writes_done", Table.Right); ("branch", Table.Left);
        ("max_storage", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun (name, algo, cfg, is_safe) ->
        let r =
          Sb_adversary.Lower_bound.run ~max_steps:200_000 ~halt_on_branch:false
            ~algorithm:algo ~cfg ~c ()
        in
        Table.add_row table
          [
            name; (if is_safe then "safe" else "regular");
            string_of_int r.completed_writes; branch_name r.branch;
            string_of_int r.max_total_bits;
          ];
        (is_safe, r))
      algos
  in
  let ok =
    List.for_all
      (fun (is_safe, (r : Sb_adversary.Lower_bound.result)) ->
        if is_safe then r.completed_writes > 0 else r.completed_writes = 0)
      rows
  in
  {
    id = "E10";
    title = "Lock-freedom denial under Ad vs the safe register";
    table;
    ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d, k=%d, c=%d writers" (d_bits ~value_bytes) f k c;
        "Corollary 1: no regular-register write ever returns under Ad. The \
         Appendix-E safe register completes writes even while |F| <= f \
         (impossible for regular registers), because overwrites shrink \
         stalled writes' contributions back below D - ell. (Ad is unfair, \
         so wait-freedom does not oblige it to finish every write.)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E11: channel storage over message passing (Section 3.2)             *)
(* ------------------------------------------------------------------ *)

let e11_channel_storage ?(value_bytes = default_value_bytes) ?(f = 3) ?(k = 3)
    ?(readers = [ 0; 2; 4; 8 ]) () =
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let algo = Sb_registers.Adaptive.make cfg in
  let module MP = Sb_msgnet.Mp_runtime in
  let table =
    Table.create
      ~title:"E11  Message passing: peak storage at servers vs in channels"
      [
        ("readers", Table.Right); ("server_bits", Table.Right);
        ("channel_bits", Table.Right); ("channel/server", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun readers ->
        let workload =
          Workloads.writers_and_readers ~value_bytes ~writers:2 ~writes_each:2
            ~readers ~reads_each:3
        in
        let best = ref (0, 0) in
        List.iter
          (fun seed ->
            let w = MP.create ~seed ~algorithm:algo ~n:cfg.n ~f:cfg.f ~workload () in
            ignore (MP.run w (MP.random_policy ~seed ()));
            if MP.max_bits_channels w > snd !best then
              best := (MP.max_bits_servers w, MP.max_bits_channels w))
          [ 1; 2; 3; 4; 5 ];
        let server, channel = !best in
        Table.add_row table
          [
            string_of_int readers; string_of_int server; string_of_int channel;
            Printf.sprintf "%.2f" (float_of_int channel /. float_of_int (max server 1));
          ];
        (readers, server, channel))
      readers
  in
  (* Shape: response snapshots make channel storage grow with read
     concurrency, overtaking server-side storage — which is why the
     paper's cost model counts channel contents (Section 3.2). *)
  let grows =
    match (rows, List.rev rows) with
    | (_, _, first) :: _, (_, _, last) :: _ -> last > first
    | _ -> false
  in
  let read_heavy_dominated =
    match List.rev rows with
    | (_, server, channel) :: _ -> channel >= server
    | [] -> false
  in
  {
    id = "E11";
    title = "Channel storage under message passing (Section 3.2)";
    table;
    ok = grows && read_heavy_dominated;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d, k=%d, n=%d; 2 writers x 2 writes; \
                        worst of 5 random deliveries" (d_bits ~value_bytes) f k cfg.n;
        "Snapshots in responses carry code blocks; counting them is what \
         subjects network-heavy algorithms to the lower bound.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E12: adversary ablation — Ad's selectivity is necessary             *)
(* ------------------------------------------------------------------ *)

let e12_adversary_ablation ?(value_bytes = default_value_bytes) ?(f = 6) ?(c = 6) () =
  let k = f in
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let algo () = Sb_registers.Adaptive.make_unbounded cfg in
  let workload =
    Array.init c (fun i ->
        [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let run_policy policy =
    let w =
      Sb_sim.Runtime.create ~algorithm:(algo ()) ~n:cfg.n ~f:cfg.f ~workload ()
    in
    let outcome = Sb_sim.Runtime.run ~max_steps:200_000 w policy in
    let completed =
      List.length
        (List.filter
           (fun (_, _, _, ret, _) -> ret <> None)
           (Sb_sim.Trace.operations (Sb_sim.Runtime.trace w)))
    in
    (Sb_sim.Runtime.max_bits_total w, completed, outcome.Sb_sim.Runtime.steps)
  in
  let halt_when (s : Sb_adversary.Ad.snapshot) =
    List.length s.frozen > cfg.f || List.length s.c_plus >= c
  in
  let policies =
    [
      ("Ad (Definition 7)",
       Sb_adversary.Ad.policy ~ell_bits:(d / 2) ~d_bits:d ~halt_when ());
      ("starve-all", Sb_adversary.Policies.starve_all ());
      ("deliver-budget(2c)", Sb_adversary.Policies.deliver_budget ~budget:(2 * c) ());
      ("starve-one-object", Sb_adversary.Policies.starve_object ~obj:0 ());
    ]
  in
  let table =
    Table.create ~title:"E12  Adversary ablation: storage pinned by each policy"
      [
        ("policy", Table.Left); ("max_storage", Table.Right);
        ("writes_done", Table.Right); ("steps", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun (name, policy) ->
        let storage, completed, steps = run_policy policy in
        Table.add_row table
          [ name; string_of_int storage; string_of_int completed; string_of_int steps ];
        (name, storage, completed))
      policies
  in
  let ad_storage =
    match rows with (_, s, _) :: _ -> s | [] -> 0
  in
  let ok =
    (* Ad pins strictly more storage than every naive starver while
       still denying progress; the harmless starve-one-object policy
       denies nothing. *)
    List.for_all
      (fun (name, storage, completed) ->
        match name with
        | "Ad (Definition 7)" -> completed = 0
        | "starve-one-object" -> completed = c
        | _ -> completed = 0 && storage < ad_storage)
      rows
  in
  {
    id = "E12";
    title = "Adversary ablation: unfairness alone does not force the bound";
    table;
    ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=k=%d, n=%d, c=%d, pure-EC register" d f cfg.n c;
        "Only Ad's selective rule-1 deliveries force Omega(min(f,c)D) bits \
         while denying completion; blanket starvation pins almost nothing, \
         and starving a single object (f >= 1) denies nothing at all.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E13: negative control — premature GC violates regularity            *)
(* ------------------------------------------------------------------ *)

(* The violating interleaving, built explicitly (n = 6, f = 2, k = 2,
   quorums of 4): write w1 completes on objects {0,1,2,3}; incomplete
   writes w2 and w3 each land a single piece on objects 2 and 3,
   evicting w1's pieces there under the broken rule; a reader then
   samples {2,3,4,5}, where only the initial value still has k = 2
   pieces — and returns v0 after w1 completed.  The correct barrier
   keeps w1's pieces, and the same schedule reads v1. *)
let premature_gc_schedule ~value_bytes algo cfg =
  let module R = Sb_sim.Runtime in
  let workload =
    [|
      [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes 0) ];
      [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes 1) ];
      [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes 2) ];
      [ Sb_sim.Trace.Read ];
    |]
  in
  let w =
    R.create ~algorithm:algo ~n:cfg.Sb_registers.Common.n
      ~f:cfg.Sb_registers.Common.f ~workload ()
  in
  let deliver_on ~client ~objs =
    List.iter
      (fun (p : R.pending_info) ->
        if p.p_client = client && List.mem p.p_obj objs then
          ignore (R.step w (R.Deliver p.ticket)))
      (R.deliverable w)
  in
  let all = [ 0; 1; 2; 3; 4; 5 ] in
  (* w1 completes on {0,1,2,3}. *)
  ignore (R.step w (R.Step 0));
  deliver_on ~client:0 ~objs:all;
  ignore (R.step w (R.Step 0));
  deliver_on ~client:0 ~objs:[ 0; 1; 2; 3 ];
  ignore (R.step w (R.Step 0));
  deliver_on ~client:0 ~objs:[ 0; 1; 2; 3 ];
  ignore (R.step w (R.Step 0));
  (* w2: one update piece on object 2. *)
  ignore (R.step w (R.Step 1));
  deliver_on ~client:1 ~objs:all;
  ignore (R.step w (R.Step 1));
  deliver_on ~client:1 ~objs:[ 2 ];
  (* w3: one update piece on object 3. *)
  ignore (R.step w (R.Step 2));
  deliver_on ~client:2 ~objs:all;
  ignore (R.step w (R.Step 2));
  deliver_on ~client:2 ~objs:[ 3 ];
  (* Reader samples {2,3,4,5}. *)
  ignore (R.step w (R.Step 3));
  deliver_on ~client:3 ~objs:[ 2; 3; 4; 5 ];
  ignore (R.step w (R.Step 3));
  let read_result =
    List.find_map
      (fun (_, kind, _, ret, res) ->
        match (kind, ret) with Sb_sim.Trace.Read, Some _ -> Some res | _ -> None)
      (Sb_sim.Trace.operations (R.trace w))
  in
  let history =
    Sb_spec.History.of_trace ~initial:(Bytes.make value_bytes '\000') (R.trace w)
  in
  (read_result, Sb_spec.Regularity.check_weak history)

let e13_premature_gc ?(value_bytes = default_value_bytes) ?(f = 2) ?(k = 2) () =
  if f <> 2 || k <> 2 then
    invalid_arg "e13_premature_gc: the crafted schedule needs f = k = 2";
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let algos =
    [
      ("pure-ec (correct barrier)", Sb_registers.Adaptive.make_unbounded cfg, true);
      ("premature-gc (broken)", Sb_registers.Adaptive.make_premature_gc cfg, false);
    ]
  in
  let table =
    Table.create
      ~title:"E13  Deleting values before the new write completes: violation caught"
      [
        ("algorithm", Table.Left); ("read_returned", Table.Left);
        ("weak_regularity", Table.Left);
      ]
  in
  let v0 = Bytes.make value_bytes '\000' in
  let v1 = Sb_util.Values.distinct ~value_bytes 0 in
  let rows =
    List.map
      (fun (name, algo, expect_ok) ->
        let read_result, verdict = premature_gc_schedule ~value_bytes algo cfg in
        let shown =
          match read_result with
          | Some (Some v) when Bytes.equal v v0 -> "v0 (stale!)"
          | Some (Some v) when Bytes.equal v v1 -> "w1's value"
          | Some (Some _) -> "other"
          | Some None -> "bottom"
          | None -> "no read returned"
        in
        Table.add_row table
          [ name; shown; Format.asprintf "%a" Sb_spec.Regularity.pp_verdict verdict ];
        (expect_ok, verdict_ok verdict))
      algos
  in
  let ok = List.for_all (fun (expect_ok, got_ok) -> expect_ok = got_ok) rows in
  {
    id = "E13";
    title = "Negative control: premature GC loses written values (Section 1)";
    table;
    ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=k=2, n=6; crafted schedule, cf. the ABD \
                        inversion construction" (d_bits ~value_bytes);
        "\"Old values cannot be deleted before sufficiently many blocks of \
         the new value are in place\": two incomplete writes each evict one \
         of w1's pieces, and a reader quorum seeing only the initial value's \
         pieces returns v0 after w1 completed — flagged by the MWRegWeak \
         checker.  The correct storedTS barrier keeps w1 readable under the \
         identical schedule.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E14: Claim 1 / Lemma 1, executable indistinguishability             *)
(* ------------------------------------------------------------------ *)

(* Run Ad against the pure-EC register with [c] writers plus one reader,
   returning the world. *)
let e14_run ~(cfg : Sb_registers.Common.config) ~values () =
  let module R = Sb_sim.Runtime in
  let d = Sb_codec.Codec.value_bits cfg.codec in
  let workload =
    Array.append
      (Array.map (fun v -> [ Sb_sim.Trace.Write v ]) values)
      [| [ Sb_sim.Trace.Read ] |]
  in
  let w =
    R.create
      ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg)
      ~n:cfg.n ~f:cfg.f ~workload ()
  in
  let halt_when (s : Sb_adversary.Ad.snapshot) =
    List.length s.c_plus >= Array.length values
  in
  let policy = Sb_adversary.Ad.policy ~ell_bits:(d / 2) ~d_bits:d ~halt_when () in
  ignore (R.run ~max_steps:200_000 w policy);
  w

let e14_indistinguishability ?(value_bytes = default_value_bytes) ?(f = 8) ?(c = 3) () =
  let module R = Sb_sim.Runtime in
  let k = f in
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let values = Array.init c (fun i -> Workloads.distinct_value ~value_bytes i) in
  let base_world = e14_run ~cfg ~values () in
  let reader_result w =
    List.find_map
      (fun (_, kind, _, ret, res) ->
        match (kind, ret) with Sb_sim.Trace.Read, Some _ -> Some res | _ -> None)
      (Sb_sim.Trace.operations (R.trace w))
  in
  let object_blocks w =
    List.concat_map
      (fun i -> Sb_storage.Objstate.blocks (R.obj_state w i))
      (List.init cfg.n Fun.id)
  in
  let table =
    Table.create
      ~title:"E14  Lemma 1 executable: colliding-value runs are indistinguishable"
      [
        ("write", Table.Left); ("stored_bits", Table.Right); ("D", Table.Right);
        ("indices", Table.Right); ("collision", Table.Left);
        ("states_identical", Table.Left); ("reader_agrees", Table.Left);
      ]
  in
  let writes =
    List.filter
      (fun (op : R.op) ->
        match op.kind with Sb_sim.Trace.Write _ -> true | _ -> false)
      (R.all_ops base_world)
  in
  let rows =
    List.map
      (fun (op : R.op) ->
        let stored = R.op_contribution base_world op in
        let indices =
          Sb_storage.Accounting.indices_of ~source:op.id (object_blocks base_world)
        in
        let base_value =
          match op.kind with Sb_sim.Trace.Write v -> v | _ -> assert false
        in
        let collision =
          Codec.rs_vandermonde_colliding ~value_bytes ~k ~n:cfg.n ~indices
            ~base:base_value
        in
        let ok =
          match collision with
          | None -> false
          | Some v' ->
            (* Re-run the identical adversary schedule with the write's
               value substituted (Definition 5's run r_v). *)
            let values' = Array.copy values in
            values'.(op.client) <- v';
            let alt_world = e14_run ~cfg ~values:values' () in
            let states_equal =
              List.for_all
                (fun i -> R.obj_state base_world i = R.obj_state alt_world i)
                (List.init cfg.n Fun.id)
            in
            let reader_equal = reader_result base_world = reader_result alt_world in
            Table.add_row table
              [
                Printf.sprintf "w%d" op.id; string_of_int stored; string_of_int d;
                string_of_int (List.length indices); "found";
                (if states_equal then "yes" else "NO");
                (if reader_equal then "yes" else "NO");
              ];
            states_equal && reader_equal && stored < d
        in
        (match collision with
         | None ->
           Table.add_row table
             [
               Printf.sprintf "w%d" op.id; string_of_int stored; string_of_int d;
               string_of_int (List.length indices); "NONE"; "-"; "-";
             ]
         | Some _ -> ());
        ok)
      writes
  in
  {
    id = "E14";
    title = "Pigeonhole collisions and indistinguishable runs (Claim 1 / Lemma 1)";
    table;
    ok = rows <> [] && List.for_all Fun.id rows;
    notes =
      [
        Printf.sprintf "D=%d bits, f=k=%d, n=%d, c=%d, pure-EC register under Ad" d f
          cfg.n c;
        "Each stalled write has < D stored bits, so a different value exists \
         whose blocks agree on every stored index (computed from the RS \
         generator's kernel); replaying the schedule with the substituted \
         value leaves every base object byte-identical and the reader's \
         return unchanged — no one can tell which value was written.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E15: bounded-version registers must provision delta >= c            *)
(* ------------------------------------------------------------------ *)

let e15_version_bound ?(value_bytes = default_value_bytes) ?(f = 2) ?(k = 8) ?(c = 10)
    ?(deltas = [ 0; 1; 2; 4; 10 ]) () =
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let piece = Codec.block_bits cfg.codec 0 in
  let table =
    Table.create
      ~title:"E15  Version-bounded register: storage and read latency vs delta"
      [
        ("delta", Table.Right); ("max_obj_bits", Table.Right);
        ("(d+1)n*piece", Table.Right); ("max_read_rounds", Table.Right);
        ("reads_done", Table.Right); ("strongly_regular", Table.Left);
      ]
  in
  let workload =
    Workloads.writers_and_readers ~value_bytes ~writers:c ~writes_each:3 ~readers:4
      ~reads_each:3
  in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let rows =
    List.map
      (fun delta ->
        let algo = Sb_registers.Adaptive.make_versioned ~delta cfg in
        let ms =
          Runs.measure_many ~seeds ~max_steps:500_000 ~algorithm:algo ~cfg ~workload ()
        in
        let m = Runs.worst ms in
        let rounds = List.fold_left (fun a m -> max a m.Runs.max_read_rounds) 0 ms in
        let reads_done = List.fold_left (fun a m -> a + m.Runs.completed_reads) 0 ms in
        let reads_inv = List.fold_left (fun a m -> a + m.Runs.invoked_reads) 0 ms in
        let storage_bound = (delta + 1) * cfg.n * piece in
        let all_strong = List.for_all (fun m -> verdict_ok m.Runs.strong) ms in
        Table.add_row table
          [
            string_of_int delta; string_of_int m.Runs.max_obj_bits;
            string_of_int storage_bound; string_of_int rounds;
            Printf.sprintf "%d/%d" reads_done reads_inv;
            (if all_strong then "yes" else "VIOLATION");
          ];
        (m.Runs.max_obj_bits <= storage_bound, rounds, reads_done = reads_inv, all_strong))
      deltas
  in
  let storage_ok = List.for_all (fun (b, _, _, _) -> b) rows in
  let liveness_ok = List.for_all (fun (_, _, done_, _) -> done_) rows in
  let safety_ok = List.for_all (fun (_, _, _, s) -> s) rows in
  let rounds_of = List.map (fun (_, r, _, _) -> r) rows in
  let latency_degrades =
    match (rounds_of, List.rev rounds_of) with
    | tight :: _, provisioned :: _ -> tight > provisioned
    | _ -> false
  in
  {
    id = "E15";
    title = "Bounded versions: delta must scale with concurrency (cf. [6])";
    table;
    ok = storage_ok && liveness_ok && safety_ok && latency_degrades;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d, k=%d, n=%d, %d writers x 3; sum/max over 8 seeds"
          (d_bits ~value_bytes) f k cfg.n c;
        "Storage obeys (delta+1)(2f+k)D/k for every delta, but tight deltas \
         make reads re-sample while the write backlog drains: bounding \
         versions below the concurrency trades latency, never safety.  \
         Provisioning delta >= c is exactly the Theta(cD) storage the lower \
         bound demands.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E16: the lower bound over message passing                           *)
(* ------------------------------------------------------------------ *)

let e16_lower_bound_mp ?(value_bytes = default_value_bytes) ?(f = 6)
    ?(cs = [ 1; 2; 4; 6 ]) () =
  let k = f in
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let table =
    Table.create
      ~title:"E16  Adversary Ad over message passing: channels cannot hide the bound"
      [
        ("c", Table.Right); ("branch", Table.Left); ("server_bits", Table.Right);
        ("total_bits", Table.Right); ("bound", Table.Right); ("writes_done", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun c ->
        let r =
          Sb_adversary.Lower_bound.run_mp
            ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg) ~cfg ~c ()
        in
        Table.add_row table
          [
            string_of_int c; branch_name r.branch; string_of_int r.max_obj_bits;
            string_of_int r.max_total_bits; string_of_int r.lower_bound_bits;
            string_of_int r.completed_writes;
          ];
        r)
      cs
  in
  let ok =
    List.for_all
      (fun (r : Sb_adversary.Lower_bound.result) ->
        r.max_total_bits >= r.lower_bound_bits
        && r.completed_writes = 0
        && r.branch <> Sb_adversary.Lower_bound.Exhausted)
      rows
  in
  {
    id = "E16";
    title = "Lower bound with channel-inclusive accounting (Theorem 1 + Section 3.2)";
    table;
    ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=k=%d, n=%d, ell=D/2; pure-EC register over \
                        Mp_runtime" d f cfg.n;
        "Contributions count blocks at servers AND in flight (request payloads, \
         snapshot responses), so parking data in the network does not evade \
         Ad: storage still exceeds min((f+1)ell, c(D-ell+1)) and no write \
         returns.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E17: the adversary's ell parameter                                  *)
(* ------------------------------------------------------------------ *)

let e17_ell_sweep ?(value_bytes = default_value_bytes) ?(f = 6) ?(c = 6) () =
  let k = f in
  let cfg = coded_cfg ~value_bytes ~f ~k in
  let d = d_bits ~value_bytes in
  let table =
    Table.create
      ~title:"E17  Sweeping the adversary threshold ell (Theorem 1's free parameter)"
      [
        ("ell", Table.Right); ("branch", Table.Left); ("(f+1)ell", Table.Right);
        ("c(D-ell+1)", Table.Right); ("bound=min", Table.Right);
        ("max_storage", Table.Right);
      ]
  in
  let ells = [ d / 8; d / 4; d / 2; 3 * d / 4; d ] in
  let rows =
    List.map
      (fun ell ->
        let r =
          Sb_adversary.Lower_bound.run ~ell_bits:ell
            ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg) ~cfg ~c ()
        in
        Table.add_row table
          [
            string_of_int ell; branch_name r.branch;
            string_of_int ((f + 1) * ell);
            string_of_int (c * (d - ell + 1));
            string_of_int r.lower_bound_bits; string_of_int r.max_total_bits;
          ];
        (ell, r))
      ells
  in
  (* Shape: the bound always holds; small ell favours the freeze branch
     (cheap freezing), large ell the saturation branch (cheap
     saturation); ell = D/2 balances them — the proof's choice. *)
  let bound_ok =
    List.for_all
      (fun (_, (r : Sb_adversary.Lower_bound.result)) ->
        r.max_total_bits >= r.lower_bound_bits && r.completed_writes = 0)
      rows
  in
  let best_bound =
    List.fold_left
      (fun acc (_, (r : Sb_adversary.Lower_bound.result)) ->
        max acc r.lower_bound_bits)
      0 rows
  in
  let mid_is_best =
    match List.find_opt (fun (ell, _) -> ell = d / 2) rows with
    | Some (_, r) -> 2 * r.lower_bound_bits >= best_bound
    | None -> false
  in
  {
    id = "E17";
    title = "Ablation: the proof's choice of ell = D/2";
    table;
    ok = bound_ok && mid_is_best;
    notes =
      [
        Printf.sprintf "D=%d bits, f=k=%d, n=%d, c=%d, pure-EC register" d f cfg.n c;
        "min((f+1)ell, c(D-ell+1)) is maximised near ell = D/2 when c ~ f \
         — exactly the instantiation the proof of Theorem 1 picks; extreme \
         ell values still hold but certify a weaker bound (ell = D gives \
         Corollary 2's qualitative form).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E18: sibling-paper bounds over restricted base-object models        *)
(* ------------------------------------------------------------------ *)

(* The storage landscape as a function of the base-object model, all
   four corners executable: over read/write base objects a regular
   register pays the (f+1)*D replication floor exactly (arXiv:1705.07212)
   while the same cells under full RMW store (2f+k)*D/k; weakening the
   register to safe wins the coded rate back; and over non-authenticated
   Byzantine objects the masking emulation again stores full replicas
   (arXiv:1805.06265's collapse). *)
let e18_base_model_floors ?(value_bytes = default_value_bytes) ?(f = 1)
    ?(k = 4) () =
  let d = d_bits ~value_bytes in
  let floor_bits = (f + 1) * d in
  let workload =
    Workloads.writers_and_readers ~value_bytes ~writers:1 ~writes_each:2
      ~readers:2 ~reads_each:2
  in
  let measure_worst ~base_model ~budget ~algorithm ~cfg =
    let ms =
      List.map
        (fun seed ->
          let byz =
            if budget > 0 then
              Some
                (Sb_adversary.Byz.policy ~seed ~n:cfg.Sb_registers.Common.n
                   ~budget Sb_adversary.Byz.Stale_echo)
            else None
          in
          Runs.measure ~seed ~base_model ?byz ~algorithm ~cfg ~workload ())
        [ 1; 2; 3 ]
    in
    Runs.worst ms
  in
  let rw_cfg =
    { Sb_registers.Common.n = (2 * f) + 1; f;
      codec = Codec.replication ~value_bytes ~n:((2 * f) + 1) }
  in
  let byz_cfg ~b =
    let n = (2 * f) + (2 * b) + 1 in
    { Sb_registers.Common.n; f; codec = Codec.replication ~value_bytes ~n }
  in
  let coded = coded_cfg ~value_bytes ~f ~k in
  let rows =
    [
      ( "rw-regular", Sb_baseobj.Model.Read_write, 0,
        Sb_registers.Rw_replica.make rw_cfg, rw_cfg,
        Some floor_bits );
      ( "rw-fcopy", Sb_baseobj.Model.Read_write, 0,
        Sb_registers.Rw_replica.make_fcopy rw_cfg, rw_cfg,
        Some (f * d) );
      ( "rw-safe", Sb_baseobj.Model.Read_write, 0,
        Sb_registers.Rw_replica.make_safe coded, coded,
        Some (((2 * f) + k) * d / k) );
      ( "adaptive(rmw)", Sb_baseobj.Model.Rmw, 0,
        Sb_registers.Adaptive.make coded, coded, None );
      ( "byz-regular:0", Sb_baseobj.Model.Byzantine { budget = 0 }, 0,
        Sb_registers.Byz_regular.make ~budget:0 (byz_cfg ~b:0), byz_cfg ~b:0,
        None );
      ( "byz-regular:1", Sb_baseobj.Model.Byzantine { budget = 1 }, 1,
        Sb_registers.Byz_regular.make ~budget:1 (byz_cfg ~b:1), byz_cfg ~b:1,
        None );
    ]
  in
  let table =
    Table.create
      ~title:
        "E18  Base-object models: the sibling papers' storage floors, measured"
      [
        ("emulation", Table.Left); ("base model", Table.Left);
        ("n", Table.Right); ("quiescent bits", Table.Right);
        ("(f+1)D floor", Table.Right); ("vs floor", Table.Left);
        ("regular", Table.Left);
      ]
  in
  let measured =
    List.map
      (fun (name, base_model, budget, algorithm, cfg, expect) ->
        let m = measure_worst ~base_model ~budget ~algorithm ~cfg in
        let rel =
          if m.Runs.final_obj_bits < floor_bits then "below"
          else if m.Runs.final_obj_bits = floor_bits then "at"
          else "above"
        in
        Table.add_row table
          [
            name;
            Format.asprintf "%a" Sb_baseobj.Model.pp base_model;
            string_of_int cfg.Sb_registers.Common.n;
            string_of_int m.Runs.final_obj_bits;
            string_of_int floor_bits;
            rel;
            (if verdict_ok m.Runs.strong then "ok" else "no");
          ];
        (name, m, expect))
      rows
  in
  let find name =
    let _, m, _ = List.find (fun (n, _, _) -> n = name) measured in
    m
  in
  let exact_ok =
    List.for_all
      (fun (_, m, expect) ->
        match expect with
        | None -> true
        | Some bits -> m.Runs.quiescent && m.Runs.final_obj_bits = bits)
      measured
  in
  let floors_ok =
    (* The two emulations whose models carry the replication floor sit
       at or above it; the coded/safe escapes sit strictly below; the
       seeded f-copy bug sits below (the sanitizer suite catches it). *)
    (find "rw-regular").Runs.final_obj_bits = floor_bits
    && (find "byz-regular:0").Runs.final_obj_bits >= floor_bits
    && (find "byz-regular:1").Runs.final_obj_bits >= floor_bits
    && (find "rw-safe").Runs.final_obj_bits < floor_bits
    && (find "adaptive(rmw)").Runs.final_obj_bits < floor_bits
    && (find "rw-fcopy").Runs.final_obj_bits < floor_bits
  in
  let regular_ok =
    List.for_all
      (fun name -> verdict_ok (find name).Runs.strong)
      [ "rw-regular"; "adaptive(rmw)"; "byz-regular:0"; "byz-regular:1" ]
  in
  {
    id = "E18";
    title = "Sibling bounds: base-object model decides the storage floor";
    table;
    ok = exact_ok && floors_ok && regular_ok;
    notes =
      [
        Printf.sprintf "D=%d bits, f=%d, k=%d; worst quiescent storage over 3 seeds" d f k;
        "Read/write base objects force (f+1) live full copies on any regular \
         emulation (arXiv:1705.07212) — rw-regular lands on the floor to the \
         bit, while the same workload over RMW objects stores (2f+k)D/k.";
        "byz-regular masks up to b lying objects (stale-echo policy, b=f) \
         and stores full replicas at 2f+2b+1 cells: disintegrated coding \
         collapses over non-authenticated Byzantine objects \
         (arXiv:1805.06265).";
        "rw-safe shows the escape hatch the rw bound leaves open: weaken \
         regular to safe and coding is admissible again; rw-fcopy is the \
         seeded below-floor bug the storage-floor sanitizer refutes.";
      ];
  }

let all () =
  [
    e1_concurrency_blowup (); e2_freeze_branch (); e3_adaptive_bound ();
    e4_eventual_gc (); e5_crossover (); e6_f_sweep (); e7_k_ablation ();
    e8_safe_constant (); e9_read_rounds (); e10_liveness_under_ad ();
    e11_channel_storage (); e12_adversary_ablation (); e13_premature_gc ();
    e14_indistinguishability (); e15_version_bound (); e16_lower_bound_mp ();
    e17_ell_sweep (); e18_base_model_floors ();
  ]

let print_outcome o =
  Printf.printf "== %s: %s [%s]\n" o.id o.title (if o.ok then "OK" else "MISMATCH");
  Table.print o.table;
  List.iter (fun n -> Printf.printf "   note: %s\n" n) o.notes;
  print_newline ()

let to_markdown outcomes =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# Experiment report\n\n";
  Buffer.add_string buf
    "Generated by `spacebounds experiments --markdown`; one section per\n\
     reproduced claim, with the measured table and the shape verdict.\n\n";
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "## %s — %s\n\n**Shape vs. paper: %s**\n\n```\n%s```\n\n" o.id
           o.title
           (if o.ok then "match" else "MISMATCH")
           (Table.render o.table));
      List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "- %s\n" n)) o.notes;
      Buffer.add_char buf '\n')
    outcomes;
  Buffer.contents buf
