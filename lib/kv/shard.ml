(* Consistent-hash key → shard ring.

   Classic fixed-point ring: every shard owns [vnodes] points placed by
   hashing "shard/replica", sorted once at construction; a key hashes to
   a point and is owned by the first shard point clockwise from it.
   Lookups are a binary search, construction is O(shards·vnodes·log).

   All placement flows through [Sb_util.Hash128] (seedless, stable
   across runs and processes), so every daemon, SDK and test computes
   the same key → shard mapping without coordination — which is what
   lets the SDK route batches and the per-shard state files stay
   consistent across restarts. *)

type t = { shards : int; points : (int64 * int) array }

let hash_string s =
  let h = Sb_util.Hash128.create () in
  Sb_util.Hash128.add_string h s;
  fst (Sb_util.Hash128.lanes h)

let create ?(vnodes = 64) ~shards () =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  if vnodes <= 0 then invalid_arg "Shard.create: vnodes must be positive";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and replica = i mod vnodes in
        (hash_string (Printf.sprintf "%d/%d" shard replica), shard))
  in
  (* Same unsigned order the binary search in [lookup] assumes. *)
  Array.sort
    (fun (h1, s1) (h2, s2) ->
      match Int64.unsigned_compare h1 h2 with
      | 0 -> Int.compare s1 s2
      | c -> c)
    points;
  { shards; points }

let shards t = t.shards

let lookup t key =
  if t.shards = 1 then 0
  else begin
    let h = hash_string key in
    (* First point with hash >= h, wrapping to the ring's start. *)
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
      else hi := mid
    done;
    snd t.points.(if !lo = n then 0 else !lo)
  end
