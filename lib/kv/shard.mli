(** Consistent-hash key → shard mapping.

    A fixed-point hash ring shared by the daemon (to route a keyed RMW
    to its shard's [Server_core]), the state files (shard membership is
    stable across restarts) and any client that wants locality hints.
    The placement hash is seedless and deterministic, so every process
    computes the same mapping without coordination; with [vnodes]
    points per shard the key space splits near-uniformly, and growing
    the ring by one shard moves only ~1/shards of the keys. *)

type t

val create : ?vnodes:int -> shards:int -> unit -> t
(** [create ~shards ()] builds the ring ([vnodes] defaults to 64 points
    per shard).  Raises [Invalid_argument] unless both are positive. *)

val shards : t -> int

val lookup : t -> string -> int
(** [lookup t key] is the shard owning [key], in [0..shards-1].
    Deterministic across processes and runs. *)
