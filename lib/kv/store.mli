(** A replicated key-value store composed of register emulations.

    Each key is backed by its own register instance — its own set of [n]
    simulated base objects running one of the [Sb_registers] algorithms —
    so the store inherits the register's fault tolerance and consistency,
    and its aggregate storage cost is the sum of the per-key costs.  This
    is the application-level view the paper's introduction motivates
    ("data is typically stored on a collection of nodes accessed
    asynchronously by clients over a network"), built purely from the
    public APIs of the lower layers.

    Operations run to completion on a seeded random (fair) schedule, so
    the store is synchronous at its interface while every operation
    internally crosses the full asynchronous quorum protocol, including
    any crashes injected with {!crash_node}.

    Values shorter than the configured size are zero-padded; a length
    prefix preserves exact round trips.  Empty values are allowed. *)

type t

type consistency = Regular | Atomic | Safe_only

val create :
  ?seed:int ->
  ?consistency:consistency ->
  cfg:Sb_registers.Common.config ->
  unit ->
  t
(** [create ~cfg ()] builds an empty store whose registers use the given
    configuration.  [consistency] picks the backing algorithm:
    [Regular] (default) the paper's adaptive algorithm, [Atomic] the
    write-back ABD (requires a replication codec), [Safe_only] the
    Appendix-E register.  The usable payload is
    [cfg.codec.value_bytes - 4] bytes ([4] bytes hold the length
    prefix). *)

val max_value_bytes : t -> int

val put : t -> key:string -> bytes -> unit
(** Writes a value; creates the key's register on first use.  Raises
    [Invalid_argument] if the value exceeds {!max_value_bytes}. *)

val get : t -> key:string -> bytes option
(** Reads the latest value; [None] for never-written keys. *)

val delete : t -> key:string -> unit
(** Forgets the key and releases its register (its simulated base
    objects disappear from the storage accounting). *)

val keys : t -> string list
(** Keys with a live register, sorted. *)

val crash_node : t -> key:string -> int -> unit
(** Crashes one of the key's base objects (at most [f] per key); later
    operations on the key keep working from the surviving quorums.
    No-op if the key does not exist. *)

val storage_bits : t -> int
(** Aggregate storage across all keys, in bits (Definition 2 applied to
    every live register). *)

val max_storage_bits : t -> int
(** Running maximum of {!storage_bits} over the store's lifetime,
    sampled after each operation. *)

val check_consistency : t -> (string * Sb_spec.Regularity.verdict) list
(** Runs the appropriate checker over every key's recorded history:
    strong regularity for [Regular], atomicity for [Atomic], strong
    safety for [Safe_only]. *)
