module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module Common = Sb_registers.Common

type consistency = Regular | Atomic | Safe_only

type entry = {
  world : R.world;
  policy : R.policy;
}

type t = {
  cfg : Common.config;
  consistency : consistency;
  algorithm : R.algorithm;
  prng : Sb_util.Prng.t;
  entries : (string, entry) Hashtbl.t;
  mutable max_storage : int;
}

let length_prefix_bytes = 4

let create ?(seed = 1) ?(consistency = Regular) ~(cfg : Common.config) () =
  Common.validate cfg;
  if cfg.codec.Sb_codec.Codec.value_bytes <= length_prefix_bytes then
    invalid_arg "Store.create: value size too small for the length prefix";
  let algorithm =
    match consistency with
    | Regular -> Sb_registers.Adaptive.make cfg
    | Atomic -> Sb_registers.Abd_atomic.make cfg
    | Safe_only -> Sb_registers.Safe_register.make cfg
  in
  {
    cfg;
    consistency;
    algorithm;
    prng = Sb_util.Prng.create seed;
    entries = Hashtbl.create 16;
    max_storage = 0;
  }

let max_value_bytes t =
  t.cfg.codec.Sb_codec.Codec.value_bytes - length_prefix_bytes

(* Frame a user payload into a fixed-size register value: 4-byte
   little-endian length followed by the payload, zero-padded. *)
let frame t payload =
  let cap = max_value_bytes t in
  if Bytes.length payload > cap then
    invalid_arg
      (Printf.sprintf "Store.put: value is %d bytes, capacity is %d"
         (Bytes.length payload) cap);
  let out = Bytes.make t.cfg.codec.Sb_codec.Codec.value_bytes '\000' in
  Bytes.blit (Sb_util.Bytesx.of_int_le (Bytes.length payload) ~width:length_prefix_bytes)
    0 out 0 length_prefix_bytes;
  Bytes.blit payload 0 out length_prefix_bytes (Bytes.length payload);
  out

let unframe value =
  let len = Sb_util.Bytesx.to_int_le (Bytes.sub value 0 length_prefix_bytes) in
  if len > Bytes.length value - length_prefix_bytes then None
  else Some (Bytes.sub value length_prefix_bytes len)

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
    let world =
      R.create
        ~seed:(Sb_util.Prng.int t.prng 1_000_000_000)
        ~algorithm:t.algorithm ~n:t.cfg.n ~f:t.cfg.f ~workload:[| [] |] ()
    in
    let policy =
      R.random_policy ~seed:(Sb_util.Prng.int t.prng 1_000_000_000) ()
    in
    let e = { world; policy } in
    Hashtbl.add t.entries key e;
    e

let storage_bits t =
  (* sb-lint: allow hashtbl-order — commutative sum of per-world bits *)
  Hashtbl.fold (fun _ e acc -> acc + R.storage_bits_objects e.world) t.entries 0

let note_storage t =
  let s = storage_bits t in
  if s > t.max_storage then t.max_storage <- s

let max_storage_bits t = t.max_storage

(* Run the key's world until its single client has completed everything
   it has queued. *)
let drive t e =
  let outcome = R.run e.world e.policy in
  if not outcome.R.quiescent then
    failwith "Store: operation did not complete (scheduler exhausted)";
  note_storage t

let put t ~key payload =
  let e = entry t key in
  R.enqueue_op e.world ~client:0 (Trace.Write (frame t payload));
  drive t e

let get t ~key =
  match Hashtbl.find_opt t.entries key with
  | None -> None
  | Some e ->
    R.enqueue_op e.world ~client:0 Trace.Read;
    drive t e;
    let reads =
      List.filter_map
        (fun (_, kind, _, ret, res) ->
          match (kind, ret) with Trace.Read, Some _ -> Some res | _ -> None)
        (Trace.operations (R.trace e.world))
    in
    (* The freshest read is the one we just ran. *)
    (match List.rev reads with
     | Some value :: _ ->
       (* A framed v0 (all zeros) decodes to the empty payload with
          length 0; distinguish "never written" by checking whether any
          write happened on this key. *)
       let wrote =
         List.exists
           (fun (_, kind, _, _, _) ->
             match kind with Trace.Write _ -> true | Trace.Read -> false)
           (Trace.operations (R.trace e.world))
       in
       if wrote then unframe value else None
     | _ -> None)

let delete t ~key =
  Hashtbl.remove t.entries key;
  note_storage t

let keys t =
  (* sb-lint: allow hashtbl-order — collected then sorted *)
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [])

let crash_node t ~key node =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e -> ignore (R.step e.world (R.Crash_obj node))

let check_consistency t =
  let initial = Bytes.make t.cfg.codec.Sb_codec.Codec.value_bytes '\000' in
  let checker h =
    match t.consistency with
    | Regular -> Sb_spec.Regularity.check_strong h
    | Safe_only -> Sb_spec.Regularity.check_safe h
    | Atomic -> (
      (* The linearizability search is bounded to 62 operations; fall
         back to strong regularity for longer-lived keys. *)
      try Sb_spec.Regularity.check_atomic h
      with Invalid_argument _ -> Sb_spec.Regularity.check_strong h)
  in
  List.map
    (fun key ->
      let e = Hashtbl.find t.entries key in
      (key, checker (Sb_spec.History.of_trace ~initial (R.trace e.world))))
    (keys t)
