module D = Sb_sim.Rmwdesc

module Mailbox = struct
  type t = (int, int * D.resp) Hashtbl.t

  let create () = Hashtbl.create 64
  let record t ~ticket ~obj resp = Hashtbl.replace t ticket (obj, resp)
  let find t ticket = Hashtbl.find_opt t ticket
  let has t ticket = Hashtbl.mem t ticket

  let satisfied t ~tickets ~quorum =
    List.fold_left (fun acc tk -> if has t tk then acc + 1 else acc) 0 tickets
    >= quorum

  let responses_for t ~tickets = List.filter_map (find t) tickets
end

module Retransmit = struct
  type config = { rto : int; max_attempts : int }

  type 'req timer = {
    owner : int;
    req : 'req;
    mutable deadline : int;
    mutable attempt : int;
  }

  type 'req t = (int, 'req timer) Hashtbl.t

  let create () = Hashtbl.create 16

  let arm t ~ticket ~owner ~deadline req =
    Hashtbl.replace t ticket { owner; req; deadline; attempt = 0 }

  let find t ticket = Hashtbl.find_opt t ticket
  let cancel t ticket = Hashtbl.remove t ticket
  let cancel_list t tickets = List.iter (cancel t) tickets

  let owned t ~owner =
    (* sb-lint: allow hashtbl-order — collected then sorted *)
    Hashtbl.fold
      (fun ticket tm acc -> if tm.owner = owner then ticket :: acc else acc)
      t []
    |> List.sort Int.compare

  let within_budget cfg tm =
    cfg.max_attempts <= 0 || tm.attempt < cfg.max_attempts

  let pending t ~live =
    (* sb-lint: allow hashtbl-order — collected then sorted *)
    Hashtbl.fold
      (fun ticket tm acc -> if live ticket tm then ticket :: acc else acc)
      t []
    |> List.sort Int.compare

  let due t ~now ~live =
    (* sb-lint: allow hashtbl-order — collected then sorted *)
    Hashtbl.fold
      (fun ticket tm acc ->
        if live ticket tm && now >= tm.deadline then ticket :: acc else acc)
      t []
    |> List.sort Int.compare

  let backoff ?cap ?(jitter = 0) cfg tm ~now =
    tm.attempt <- tm.attempt + 1;
    (* Exponential backoff, capped to keep deadlines reachable.  The
       caller may tighten the cap and add jitter it drew from its own
       seeded source — this module stays deterministic. *)
    let d = cfg.rto * (1 lsl min tm.attempt 16) in
    let d = match cap with Some c -> min d (max cfg.rto c) | None -> d in
    tm.deadline <- now + d + max 0 jitter
end
