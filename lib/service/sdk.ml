open Effect.Deep
module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module D = Sb_sim.Rmwdesc
module Mailbox = Client_core.Mailbox
module Rt = Client_core.Retransmit

type config = {
  n : int;
  f : int;
  sockdir : string;
  rto_ms : int;
  max_attempts : int;
  reconnect_ms : int;
  sample_every_ms : int;
  deadline_ms : int;
  think_ms : int;
  batch_max : int;
  flush_ms : int;
}

let default_config ~n ~f ~sockdir =
  {
    n;
    f;
    sockdir;
    rto_ms = 100;
    max_attempts = 0;
    reconnect_ms = 50;
    sample_every_ms = 20;
    deadline_ms = 120_000;
    think_ms = 0;
    batch_max = 1;
    flush_ms = 2;
  }

type sample = { at_ms : float; total_bits : int }

type failure_reason =
  | Attempts_exhausted of int
  | Deadline_expired

type op_failure = {
  fl_op : int;
  fl_client : int;
  fl_kind : Trace.op_kind;
  fl_at_ms : float;
  fl_reason : failure_reason;
}

type server_health = {
  sh_server : int;
  sh_connects : int;
  sh_dial_failures : int;
  sh_fail_streak : int;
}

(* Raised into an abandoned fiber at its await point so its cleanup
   runs; the engine catches it at the discontinue site. *)
exception Op_abandoned

type report = {
  trace : Trace.t;
  ops_invoked : int;
  ops_completed : int;
  wall_ms : float;
  latencies_ms : float list;  (* completion order *)
  samples : sample list;  (* chronological *)
  final_stats : Wire.stats list;
  desc_log : D.t list;  (* trigger order *)
  retransmissions : int;
  reconnects : int;
  recoveries_observed : int;
  batches_sent : int;  (* Req_batch frames (2+ requests each) *)
  frames_sent : int;  (* every frame handed to a socket buffer *)
  downgrades : int;
      (* v2+ handshakes that fell back to v1 after an old daemon closed *)
  schema_rejects : (int * string) list;
      (* typed handshake refusals, by server; chronological *)
  peak_sampled_bits : int;
  timed_out : bool;
  failures : op_failure list;
      (* typed per-operation failures, chronological: an operation that
         can no longer reach its quorum within the retransmission
         budget fails with [Attempts_exhausted]; operations still in
         flight when [deadline_ms] expires fail with
         [Deadline_expired].  Never a hang, never a raw exception. *)
  health : server_health list;
      (* per-server connection health at the end of the run *)
}

(* ------------------------------------------------------------------ *)
(* Engine state                                                         *)
(* ------------------------------------------------------------------ *)

type fiber_outcome = Done of bytes option | Blocked

type parked = {
  w_tickets : int list;
  w_quorum : int;
  w_k : ((int * R.resp) list, fiber_outcome) continuation;
}

type client = {
  cid : int;
  mutable queue : Trace.op_kind list;
  mutable key_queue : string list;
      (* parallel to [queue] when non-empty: the key each queued
         operation addresses (keyed closed-loop workloads); empty for
         plain workloads, which stay on the "" register *)
  mutable waiting : parked option;
  mutable current_op : R.op option;
  mutable current_key : string;
      (* the register the in-flight operation addresses; "" is the
         pre-sharding single register, and the only key v1/v2 peers can
         be spoken to about *)
  mutable op_start : float;
  mutable ready_at : float;  (* closed-loop pacing: next invocation time *)
  c_prng : Sb_util.Prng.t;
}

type conn = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  out : Buffer.t;
  delayed : (float * bytes) Queue.t;
      (* (due wall-ms, chunk): fault-delayed output segments.  Once the
         queue is non-empty every later chunk appends behind it, so
         byte order on the wire is always preserved. *)
  mutable closing : bool;  (* slow-close once out + delayed drain *)
  mutable pending : Wire.request list;  (* reversed batch buffer *)
  mutable pending_n : int;
  mutable pending_since : float;  (* wall-ms of the oldest pending req *)
}

type connstate = Up of conn | Down of { mutable retry_at : float }

type engine = {
  cfg : config;
  algorithm : R.algorithm;
  clients : client array;
  conns : connstate array;
  responses : Mailbox.t;
  timers : (int * Wire.msg) Rt.t;
      (* server id, request message — re-encoded at the server's
         negotiated version on every (re)send, so a retransmission
         armed before a downgrade still reaches the v1 server *)
  rt_cfg : Rt.config;
  mutable next_ticket : int;
  mutable next_op : int;
  mutable lstep : int;  (* logical trace clock: bumps per event *)
  tr : Trace.t;
  start : float;
  mutable desc_log : D.t list;  (* reversed *)
  mutable latencies : float list;  (* reversed *)
  mutable samples : sample list;  (* reversed *)
  mutable next_sample_at : float;
  last_stats : Wire.stats option array;
  incarnation_seen : int option array;
  mutable ops_invoked : int;
  mutable ops_completed : int;
  mutable retransmissions : int;
  mutable reconnects : int;
  connects : int array;
  mutable recoveries_observed : int;
  peer_version : int array;
      (* negotiated wire version per server; starts optimistic *)
  welcomed : bool array;  (* this connection completed its handshake *)
  rejected : bool array;  (* typed schema reject: do not reconnect *)
  mutable downgrades : int;
  mutable schema_rejects : (int * string) list;  (* reversed *)
  hooks : Netfault.t;
  j_prng : Sb_util.Prng.t;
      (* backoff jitter; split from the root seed *after* the client
         prngs so client randomness streams (and thus desc_log parity
         with the simulated transport) are unchanged *)
  dial_failures : int array;
  fail_streak : int array;
      (* consecutive dial failures / drops per server; reset on
         Welcome.  Drives the escalating reconnect backoff so a dead
         peer is not hammered at a fixed cadence. *)
  mutable op_failures : op_failure list;  (* reversed *)
  open_loop : bool;
      (* open loop: completed slots return to [free_slots] instead of
         invoking their next queued operation, and the per-event trace
         and desc log are not accumulated (an open-loop run is tens of
         thousands of operations; its observables are counters and
         latencies, not histories) *)
  mutable free_slots : int list;
  mutable batches_sent : int;  (* Req_batch frames (2+ requests) *)
  mutable frames_sent : int;  (* every frame handed to a socket buffer *)
}

let now_ms eng = (Unix.gettimeofday () -. eng.start) *. 1000.0
let now_ms_int eng = int_of_float (now_ms eng)

let tick eng =
  eng.lstep <- eng.lstep + 1;
  eng.lstep

(* ------------------------------------------------------------------ *)
(* Connections                                                          *)
(* ------------------------------------------------------------------ *)

let own_schema =
  { Wire.ps_version = Wire.version; ps_hash = Wire.schema_hash }

(* Escalating jittered reconnect backoff: reconnect_ms * 2^streak,
   capped at 32x, plus seeded jitter so a fleet of clients does not
   retry a dead peer in lockstep. *)
let retry_delay eng s =
  let base = max 1 eng.cfg.reconnect_ms in
  let d = min (base * (1 lsl min eng.fail_streak.(s) 5)) (base * 32) in
  float_of_int (d + Sb_util.Prng.int eng.j_prng (max 1 (base / 2)))

let dial_failed eng s =
  eng.dial_failures.(s) <- eng.dial_failures.(s) + 1;
  eng.fail_streak.(s) <- eng.fail_streak.(s) + 1;
  eng.conns.(s) <- Down { retry_at = now_ms eng +. retry_delay eng s }

let push_out eng c segments =
  List.iter
    (fun (delay_ms, chunk) ->
      if delay_ms <= 0 && Queue.is_empty c.delayed then
        Buffer.add_bytes c.out chunk
      else Queue.add (now_ms eng +. float_of_int delay_ms, chunk) c.delayed)
    segments

let flush_delayed eng c =
  let now = now_ms eng in
  let rec go () =
    match Queue.peek_opt c.delayed with
    | Some (due, chunk) when due <= now ->
      ignore (Queue.pop c.delayed);
      Buffer.add_bytes c.out chunk;
      go ()
    | _ -> ()
  in
  go ()

let send_frame eng s c frame =
  (* A slow-closing connection already has a truncated frame as its
     stream tail; appending anything more would let the peer's reader
     complete that frame with the next frame's header bytes — silent
     payload corruption, not loss.  Drop instead; retransmission takes
     over once the close lands and the server is re-dialled. *)
  if c.closing then ()
  else begin
    eng.frames_sent <- eng.frames_sent + 1;
    match eng.hooks.Netfault.nf_frame ~server:s frame with
    | Netfault.Pass -> push_out eng c [ (0, frame) ]
    | Netfault.Drop -> ()
    | Netfault.Emit segs -> push_out eng c segs
    | Netfault.Emit_close segs ->
      push_out eng c segs;
      c.closing <- true
  end

let try_connect eng s =
  if not (eng.hooks.Netfault.nf_connect ~server:s) then dial_failed eng s
  else
    let path = Daemon.sockpath ~sockdir:eng.cfg.sockdir s in
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () ->
      Unix.set_nonblock fd;
      let c =
        {
          fd;
          reader = Wire.Reader.create ();
          out = Buffer.create 256;
          delayed = Queue.create ();
          closing = false;
          pending = [];
          pending_n = 0;
          pending_since = 0.0;
        }
      in
      eng.welcomed.(s) <- false;
      (* Hello optimistically at the last version this server spoke
         (initially ours); v1 framing drops the schema field itself. *)
      send_frame eng s c
        (Wire.encode_msg ~version:eng.peer_version.(s)
           (Wire.Hello { client = 0; schema = Some own_schema }));
      eng.conns.(s) <- Up c;
      eng.connects.(s) <- eng.connects.(s) + 1;
      if eng.connects.(s) > 1 then eng.reconnects <- eng.reconnects + 1
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      dial_failed eng s

let mark_down eng s =
  (match eng.conns.(s) with
   | Up c ->
     (try Unix.close c.fd with Unix.Unix_error _ -> ());
     (* A close before [Welcome] while we were speaking v2+ is how an
        old daemon refuses frames it cannot decode: fall back to v1 for
        this server (sticky) and let the reconnect retry the
        handshake. *)
     if (not eng.welcomed.(s)) && eng.peer_version.(s) > 1 then begin
       eng.peer_version.(s) <- 1;
       eng.downgrades <- eng.downgrades + 1
     end
   | Down _ -> ());
  eng.fail_streak.(s) <- eng.fail_streak.(s) + 1;
  eng.conns.(s) <- Down { retry_at = now_ms eng +. retry_delay eng s }

let schema_reject eng s detail =
  eng.schema_rejects <- (s, detail) :: eng.schema_rejects;
  eng.rejected.(s) <- true;
  eng.welcomed.(s) <- true;  (* a typed refusal is not a downgrade *)
  mark_down eng s

let ensure_conns eng =
  Array.iteri
    (fun s st ->
      match st with
      | Up _ -> ()
      | Down d ->
        if (not eng.rejected.(s)) && now_ms eng >= d.retry_at then
          try_connect eng s)
    eng.conns

(* Flush a connection's batch buffer: one request goes out as the plain
   [Request] frame (so a batch_max > 1 client is byte-identical to a
   classic one under low concurrency), two or more as a [Req_batch]. *)
let flush_batch eng s c =
  match c.pending with
  | [] -> ()
  | [ rq ] ->
    c.pending <- [];
    c.pending_n <- 0;
    send_frame eng s c
      (Wire.encode_msg ~version:eng.peer_version.(s) (Wire.Request rq))
  | rqs ->
    c.pending <- [];
    c.pending_n <- 0;
    eng.batches_sent <- eng.batches_sent + 1;
    send_frame eng s c
      (Wire.encode_msg ~version:eng.peer_version.(s)
         (Wire.Req_batch (List.rev rqs)))

(* Keyed traffic needs wire v3; towards an older peer the frame is
   unencodable, so it is dropped rather than raised on — the operation
   fails by its retransmission/deadline budget, never the process. *)
let encodable eng s msg =
  eng.peer_version.(s) >= 3
  ||
  match msg with
  | Wire.Request rq -> rq.Wire.rq_key = ""
  | Wire.Req_batch _ | Wire.Resp_batch _ -> false
  | _ -> true

(* A request towards a dead server waits in its retransmit timer;
   resends go out once the connection is back.  Frames are encoded at
   send time, at the server's negotiated version.  Any pending batch
   flushes first: a connection's frames stay in send order. *)
let send_to eng s msg =
  match eng.conns.(s) with
  | Up c when encodable eng s msg ->
    flush_batch eng s c;
    send_frame eng s c (Wire.encode_msg ~version:eng.peer_version.(s) msg)
  | Up _ | Down _ -> ()

(* Triggered requests route here: buffered while batching is armed for
   the peer (negotiated v3+, handshake done), immediate otherwise. *)
let enqueue_req eng s (rq : Wire.request) =
  match eng.conns.(s) with
  | Up c
    when eng.cfg.batch_max > 1
         && eng.welcomed.(s)
         && eng.peer_version.(s) >= 3
         && not c.closing ->
    if c.pending = [] then c.pending_since <- now_ms eng;
    c.pending <- rq :: c.pending;
    c.pending_n <- c.pending_n + 1;
    if c.pending_n >= eng.cfg.batch_max then flush_batch eng s c
  | _ -> send_to eng s (Wire.Request rq)

(* Age-based flush: a batch never waits longer than [flush_ms] for
   co-travellers, so light load degenerates to single frames with a
   bounded (milliseconds) latency tax instead of a stall. *)
let fire_flushes eng =
  if eng.cfg.batch_max > 1 then begin
    let now = now_ms eng in
    Array.iteri
      (fun s st ->
        match st with
        | Up c
          when c.pending_n > 0
               && now -. c.pending_since >= float_of_int eng.cfg.flush_ms ->
          flush_batch eng s c
        | _ -> ())
      eng.conns
  end

(* ------------------------------------------------------------------ *)
(* Fibers: the same Trigger/Await effects, interpreted over sockets     *)
(* ------------------------------------------------------------------ *)

let timer_live eng ticket (t : (int * Wire.msg) Rt.timer) =
  (not (Mailbox.has eng.responses ticket))
  && Rt.within_budget eng.rt_cfg t
  && eng.clients.(t.Rt.owner).current_op <> None

let handle_fiber eng (cl : client) (op : R.op) (body : unit -> bytes option) :
    fiber_outcome =
  match_with body ()
    {
      retc = (fun r -> Done r);
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | R.Trigger (obj, payload, _rmw, nature, desc) ->
            Some
              (fun (k : (b, fiber_outcome) continuation) ->
                if obj < 0 || obj >= eng.cfg.n then
                  invalid_arg "Sdk: no such server";
                let d =
                  match desc with
                  | Some d -> d
                  | None ->
                    invalid_arg
                      "Sdk: protocol triggered an RMW without a serializable \
                       description"
                in
                let ticket = eng.next_ticket in
                eng.next_ticket <- ticket + 1;
                if not eng.open_loop then eng.desc_log <- d :: eng.desc_log;
                let rq =
                  {
                    Wire.rq_key = cl.current_key;
                    rq_client = cl.cid;
                    rq_ticket = ticket;
                    rq_op = op.R.id;
                    rq_nature = nature;
                    rq_payload = payload;
                    rq_desc = d;
                  }
                in
                if not eng.open_loop then
                  Trace.add eng.tr
                    (Rmw_trigger
                       {
                         time = tick eng;
                         ticket;
                         op = op.R.id;
                         client = cl.cid;
                         obj;
                         payload_bits =
                           Sb_storage.Accounting.bits_of_blocks payload;
                       });
                enqueue_req eng obj rq;
                Rt.arm eng.timers ~ticket ~owner:cl.cid
                  ~deadline:(now_ms_int eng + eng.cfg.rto_ms)
                  (obj, Wire.Request rq);
                continue k ticket)
          | R.Await (tickets, quorum) ->
            Some
              (fun (k : (b, fiber_outcome) continuation) ->
                if Mailbox.satisfied eng.responses ~tickets ~quorum then begin
                  let rs = Mailbox.responses_for eng.responses ~tickets in
                  Rt.cancel_list eng.timers tickets;
                  continue k rs
                end
                else begin
                  cl.waiting <-
                    Some { w_tickets = tickets; w_quorum = quorum; w_k = k };
                  Blocked
                end)
          | _ -> None);
    }

let finish_op eng cl (op : R.op) result =
  cl.current_op <- None;
  eng.ops_completed <- eng.ops_completed + 1;
  eng.latencies <- (now_ms eng -. cl.op_start) :: eng.latencies;
  if not eng.open_loop then
    Trace.add eng.tr
      (Return { time = tick eng; op = op.R.id; client = cl.cid; result })

(* [at] is the operation's start for latency purposes: invocation time
   in the closed loop, the Poisson {e intended} time in the open loop —
   the open-loop latency includes any backlog queueing delay, which is
   what makes it coordinated-omission-safe. *)
let rec start_op eng cl kind ~at =
  let op = { R.id = eng.next_op; client = cl.cid; kind; rounds = 0 } in
  eng.next_op <- eng.next_op + 1;
  cl.current_op <- Some op;
  cl.op_start <- at;
  eng.ops_invoked <- eng.ops_invoked + 1;
  if not eng.open_loop then
    Trace.add eng.tr
      (Invoke { time = tick eng; op = op.R.id; client = cl.cid; kind });
  let ctx = { R.self = cl.cid; op; n_objects = eng.cfg.n; prng = cl.c_prng } in
  let body () =
    match kind with
    | Trace.Write v ->
      eng.algorithm.R.write ctx v;
      None
    | Trace.Read -> eng.algorithm.R.read ctx
  in
  (match handle_fiber eng cl op body with
   | Done result ->
     finish_op eng cl op result;
     after_op eng cl
   | Blocked -> ())

and invoke_next eng cl =
  match cl.queue with
  | [] -> ()
  | kind :: rest ->
    cl.queue <- rest;
    (match cl.key_queue with
     | k :: krest ->
       cl.current_key <- k;
       cl.key_queue <- krest
     | [] -> ());
    start_op eng cl kind ~at:(now_ms eng)

(* Closed loop: the next operation follows the completed one, either
   immediately or after the configured think time.  Open loop: the slot
   returns to the pool; the arrival process owns invocation. *)
and after_op eng cl =
  if eng.open_loop then eng.free_slots <- cl.cid :: eng.free_slots
  else if eng.cfg.think_ms = 0 then invoke_next eng cl
  else cl.ready_at <- now_ms eng +. float_of_int eng.cfg.think_ms

let resume eng cl =
  match cl.waiting with
  | None -> ()
  | Some { w_tickets; w_quorum; w_k } ->
    if Mailbox.satisfied eng.responses ~tickets:w_tickets ~quorum:w_quorum
    then begin
      cl.waiting <- None;
      let rs = Mailbox.responses_for eng.responses ~tickets:w_tickets in
      Rt.cancel_list eng.timers w_tickets;
      match continue w_k rs with
      | Done result ->
        let op = match cl.current_op with Some op -> op | None -> assert false in
        finish_op eng cl op result;
        after_op eng cl
      | Blocked -> ()
    end

let resume_runnable eng =
  (* A single response can unblock several logical clients, and a
     resumed fiber can itself satisfy others; iterate to fixpoint. *)
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iter
      (fun cl ->
        match cl.waiting with
        | Some { w_tickets; w_quorum; _ }
          when Mailbox.satisfied eng.responses ~tickets:w_tickets
                 ~quorum:w_quorum ->
          progressed := true;
          resume eng cl
        | _ -> ())
      eng.clients
  done

(* ------------------------------------------------------------------ *)
(* Inbound frames                                                       *)
(* ------------------------------------------------------------------ *)

let note_incarnation eng s inc =
  (match eng.incarnation_seen.(s) with
   | Some prev when inc > prev -> eng.recoveries_observed <- eng.recoveries_observed + 1
   | _ -> ());
  match eng.incarnation_seen.(s) with
  | Some prev when prev >= inc -> ()
  | _ -> eng.incarnation_seen.(s) <- Some inc

let record_sample eng =
  let all = Array.for_all Option.is_some eng.last_stats in
  if all then begin
    let total =
      Array.fold_left
        (fun acc st ->
          match st with Some s -> acc + s.Wire.st_storage_bits | None -> acc)
        0 eng.last_stats
    in
    eng.samples <- { at_ms = now_ms eng; total_bits = total } :: eng.samples
  end

let reject_code_name = function
  | Wire.Unsupported_version -> "unsupported-version"
  | Wire.Incompatible_schema -> "incompatible-schema"

let rec handle_inbound eng s (msg : Wire.msg) =
  match msg with
  | Wire.Welcome { server; incarnation; schema } ->
    if server = s then begin
      (match schema with
       | Some ps
         when ps.Wire.ps_version = Wire.version
              && not (String.equal ps.Wire.ps_hash Wire.schema_hash) ->
         (* Same schema version, different layout: drifted peer. *)
         schema_reject eng s
           (Printf.sprintf "welcome schema v%d hash differs from ours"
              ps.Wire.ps_version)
       | Some ps ->
         eng.welcomed.(s) <- true;
         eng.peer_version.(s) <-
           max 1 (min Wire.version ps.Wire.ps_version)
       | None ->
         (* v1 daemons have no schema field to send. *)
         eng.welcomed.(s) <- true;
         eng.peer_version.(s) <- 1);
      if not eng.rejected.(s) then begin
        eng.fail_streak.(s) <- 0;
        note_incarnation eng s incarnation
      end
    end
  | Wire.Reject { rj_code; rj_detail } ->
    schema_reject eng s
      (Printf.sprintf "%s: %s" (reject_code_name rj_code) rj_detail)
  | Wire.Response rs -> handle_response eng s rs
  | Wire.Resp_batch rss -> List.iter (handle_response eng s) rss
  | Wire.Stats st ->
    eng.last_stats.(s) <- Some st;
    note_incarnation eng s st.Wire.st_incarnation;
    record_sample eng
  | Wire.Hello _ | Wire.Request _ | Wire.Req_batch _ | Wire.Stats_query ->
    (* Client-to-server traffic arriving at the client: drop the peer. *)
    mark_down eng s

and handle_response eng s (rs : Wire.response) =
  note_incarnation eng s rs.Wire.rs_incarnation;
  Mailbox.record eng.responses ~ticket:rs.Wire.rs_ticket
    ~obj:rs.Wire.rs_server rs.Wire.rs_resp;
  Rt.cancel eng.timers rs.Wire.rs_ticket

let read_conn eng s c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> mark_down eng s
  | n ->
    Wire.Reader.feed c.reader buf 0 n;
    let rec drain () =
      match eng.conns.(s) with
      | Down _ -> ()
      | Up _ -> (
        match Wire.Reader.next c.reader with
        | Ok None -> ()
        | Ok (Some msg) ->
          handle_inbound eng s msg;
          drain ()
        | Error _ -> mark_down eng s)
    in
    drain ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> mark_down eng s

let write_conn eng s c =
  let pending = Buffer.to_bytes c.out in
  match Unix.write c.fd pending 0 (Bytes.length pending) with
  | n ->
    Buffer.clear c.out;
    if n < Bytes.length pending then
      Buffer.add_subbytes c.out pending n (Bytes.length pending - n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> mark_down eng s

(* ------------------------------------------------------------------ *)
(* The driver loop                                                      *)
(* ------------------------------------------------------------------ *)

let all_done eng =
  Array.for_all
    (fun cl -> cl.queue = [] && cl.current_op = None)
    eng.clients

(* ------------------------------------------------------------------ *)
(* Typed failure paths: never hang, never leak a parked fiber           *)
(* ------------------------------------------------------------------ *)

(* Unwind an abandoned fiber by resuming its continuation with
   [Op_abandoned]; any timers its unwinding leaves behind are swept. *)
let abandon_fiber eng cl =
  match cl.waiting with
  | None -> ()
  | Some { w_tickets; w_k; _ } ->
    cl.waiting <- None;
    Rt.cancel_list eng.timers w_tickets;
    (match discontinue w_k Op_abandoned with
     | Done _ | Blocked -> ()
     | exception Op_abandoned -> ()
     | exception _ -> ());
    cl.waiting <- None;
    Rt.cancel_list eng.timers (Rt.owned eng.timers ~owner:cl.cid)

let record_failure eng cl reason =
  match cl.current_op with
  | None -> ()
  | Some op ->
    eng.op_failures <-
      {
        fl_op = op.R.id;
        fl_client = cl.cid;
        fl_kind = op.R.kind;
        fl_at_ms = now_ms eng;
        fl_reason = reason;
      }
      :: eng.op_failures;
    cl.current_op <- None

(* With a bounded retransmission budget, a parked operation whose
   remaining reachable responses cannot meet its quorum is failed with
   a typed [Attempts_exhausted] instead of hanging forever.  A ticket
   still counts as reachable while its final attempt's RTO window is
   open — the last send gets its chance to land. *)
let sweep_exhausted eng =
  if eng.cfg.max_attempts > 0 then begin
    let now = now_ms_int eng in
    Array.iter
      (fun cl ->
        match cl.waiting with
        | None -> ()
        | Some { w_tickets; w_quorum; _ } ->
          let reachable =
            List.fold_left
              (fun acc tk ->
                if Mailbox.has eng.responses tk then acc + 1
                else
                  match Rt.find eng.timers tk with
                  | Some t
                    when Rt.within_budget eng.rt_cfg t || now < t.Rt.deadline
                    -> acc + 1
                  | Some _ | None -> acc)
              0 w_tickets
          in
          if reachable < w_quorum then begin
            let attempts =
              List.fold_left
                (fun acc tk ->
                  match Rt.find eng.timers tk with
                  | Some t -> max acc t.Rt.attempt
                  | None -> acc)
                0 w_tickets
            in
            abandon_fiber eng cl;
            record_failure eng cl (Attempts_exhausted attempts);
            after_op eng cl
          end)
      eng.clients
  end

let fail_in_flight eng reason =
  Array.iter
    (fun cl ->
      if cl.current_op <> None then begin
        abandon_fiber eng cl;
        record_failure eng cl reason
      end)
    eng.clients

let fire_retransmits eng =
  List.iter
    (fun ticket ->
      match Rt.find eng.timers ticket with
      | None -> ()
      | Some t ->
        (* Cap the exponential term and add seeded jitter so retry
           storms against a recovering daemon de-synchronise. *)
        Rt.backoff
          ~cap:(eng.cfg.rto_ms * 64)
          ~jitter:(Sb_util.Prng.int eng.j_prng (max 1 (eng.cfg.rto_ms / 2)))
          eng.rt_cfg t ~now:(now_ms_int eng);
        eng.retransmissions <- eng.retransmissions + 1;
        let s, req = t.Rt.req in
        send_to eng s req)
    (Rt.due eng.timers ~now:(now_ms_int eng) ~live:(timer_live eng))

let fire_sampling eng =
  if eng.cfg.sample_every_ms > 0 && now_ms eng >= eng.next_sample_at then begin
    eng.next_sample_at <-
      now_ms eng +. float_of_int eng.cfg.sample_every_ms;
    Array.fill eng.last_stats 0 (Array.length eng.last_stats) None;
    Array.iteri (fun s _ -> send_to eng s Wire.Stats_query) eng.conns
  end

let select_round eng timeout =
  let rds = ref [] and wrs = ref [] in
  Array.iter
    (fun st ->
      match st with
      | Up c ->
        flush_delayed eng c;
        rds := c.fd :: !rds;
        if Buffer.length c.out > 0 then wrs := c.fd :: !wrs
      | Down _ -> ())
    eng.conns;
  (match Unix.select !rds !wrs [] timeout with
   | readable, writable, _ ->
     Array.iteri
       (fun s st ->
         match st with
         | Up c ->
           if List.memq c.fd writable && Buffer.length c.out > 0 then
             write_conn eng s c;
           (match eng.conns.(s) with
            | Up c when List.memq c.fd readable -> read_conn eng s c
            | _ -> ())
         | Down _ -> ())
       eng.conns
   | exception Unix.Unix_error (EINTR, _, _) -> ());
  (* Slow-close sweep: an [Emit_close] connection drops once its
     remaining output (buffered and delayed) has drained. *)
  Array.iteri
    (fun s st ->
      match st with
      | Up c
        when c.closing
             && Buffer.length c.out = 0
             && Queue.is_empty c.delayed -> mark_down eng s
      | _ -> ())
    eng.conns

let create ?(hooks = Netfault.none) ?(open_loop = false) ~algorithm ~seed
    ~workload cfg =
  let root = Sb_util.Prng.create seed in
  (* Clients split from the root first, in cid order — the same order
     the simulated transport uses, so desc_log parity holds.  The
     jitter prng splits strictly after them. *)
  let clients =
    Array.mapi
      (fun i ops ->
        {
          cid = i;
          queue = ops;
          key_queue = [];
          waiting = None;
          current_op = None;
          current_key = "";
          op_start = 0.0;
          ready_at = 0.0;
          c_prng = Sb_util.Prng.split root;
        })
      workload
  in
  let j_prng = Sb_util.Prng.split root in
  {
    cfg;
    algorithm;
    clients;
    conns = Array.init cfg.n (fun _ -> Down { retry_at = 0.0 });
    responses = Mailbox.create ();
    timers = Rt.create ();
    rt_cfg = { Rt.rto = cfg.rto_ms; max_attempts = cfg.max_attempts };
    next_ticket = 1;
    next_op = 1;
    lstep = 0;
    tr = Trace.create ();
    start = Unix.gettimeofday ();
    desc_log = [];
    latencies = [];
    samples = [];
    next_sample_at = 0.0;
    last_stats = Array.make cfg.n None;
    incarnation_seen = Array.make cfg.n None;
    ops_invoked = 0;
    ops_completed = 0;
    retransmissions = 0;
    reconnects = 0;
    connects = Array.make cfg.n 0;
    recoveries_observed = 0;
    peer_version = Array.make cfg.n Wire.version;
    welcomed = Array.make cfg.n false;
    rejected = Array.make cfg.n false;
    downgrades = 0;
    schema_rejects = [];
    hooks;
    j_prng;
    dial_failures = Array.make cfg.n 0;
    fail_streak = Array.make cfg.n 0;
    op_failures = [];
    open_loop;
    free_slots = [];
    batches_sent = 0;
    frames_sent = 0;
  }

(* A quiescent stats round over fresh connections; used for the final
   report and exposed for post-run floor checks.

   Each connection handshakes first and queries at the negotiated
   version — min(ours, the Welcome's schema version) — so a v3 daemon
   answers with its per-shard aggregation tail while older daemons
   still answer with their own framing.  A daemon so old it closes the
   connection on a too-new [Hello] (instead of answering [Welcome]) is
   retried once pinned at v1, mirroring the engine's sticky
   downgrade. *)
let fetch_stats ?(timeout_ms = 5000) ~sockdir ~servers () =
  List.filter_map
    (fun s ->
      (* Budgeted per server: a slow or unreachable server exhausts its
         own window, never the remaining servers'. *)
      let deadline =
        Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.0)
      in
      let path = Daemon.sockpath ~sockdir s in
      let rec attempt hello_v =
        if Unix.gettimeofday () > deadline then None
        else
          let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
          (* Reads are select-bounded: a reply lost to a fault plane (or
             a wedged server) costs one short attempt, not a hang — the
             retry re-dials and re-queries from scratch. *)
          let attempt_deadline = min deadline (Unix.gettimeofday () +. 0.5) in
          match
            Unix.connect fd (ADDR_UNIX path);
            let send v msg =
              let frame = Wire.encode_msg ~version:v msg in
              ignore (Unix.write fd frame 0 (Bytes.length frame))
            in
            (* v1 framing drops the schema field itself. *)
            send hello_v (Wire.Hello { client = 0; schema = Some own_schema });
            let reader = Wire.Reader.create () in
            let buf = Bytes.create 65536 in
            let negotiated = ref None in
            let rec read_loop () =
              match Wire.Reader.next reader with
              | Ok (Some (Wire.Welcome { schema; _ })) when !negotiated = None
                ->
                let v =
                  match schema with
                  | Some ps -> max 1 (min Wire.version ps.Wire.ps_version)
                  | None -> 1
                in
                negotiated := Some v;
                send v Wire.Stats_query;
                read_loop ()
              | Ok (Some (Wire.Stats st)) -> `Stats st
              | Ok (Some (Wire.Reject _)) -> `Rejected
              | Ok (Some _) -> read_loop ()
              | Ok None ->
                let remaining = attempt_deadline -. Unix.gettimeofday () in
                if remaining <= 0.0 then `Timeout
                else begin
                  match Unix.select [ fd ] [] [] remaining with
                  | [], _, _ -> `Timeout
                  | _ ->
                    let n = Unix.read fd buf 0 (Bytes.length buf) in
                    if n = 0 then
                      (* Closed before [Welcome] while we spoke v2+: an
                         old daemon refusing frames it cannot decode. *)
                      if !negotiated = None && hello_v > 1 then `Closed
                      else `Timeout
                    else begin
                      Wire.Reader.feed reader buf 0 n;
                      read_loop ()
                    end
                end
              | Error _ -> `Timeout
            in
            read_loop ()
          with
          | r -> (
            (try Unix.close fd with Unix.Unix_error _ -> ());
            match r with
            | `Stats st -> Some st
            | `Rejected -> None
            | `Closed -> attempt 1
            | `Timeout ->
              if Unix.gettimeofday () > deadline then None
              else attempt hello_v)
          | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if Unix.gettimeofday () > deadline then None
            else begin
              Unix.sleepf 0.02;
              attempt hello_v
            end
      in
      attempt Wire.version)
    servers

let report_of eng ~wall_ms ~final_stats ~timed_out =
  let peak_sampled_bits =
    List.fold_left (fun acc s -> max acc s.total_bits) 0 eng.samples
  in
  {
    trace = eng.tr;
    ops_invoked = eng.ops_invoked;
    ops_completed = eng.ops_completed;
    wall_ms;
    latencies_ms = List.rev eng.latencies;
    samples = List.rev eng.samples;
    final_stats;
    desc_log = List.rev eng.desc_log;
    retransmissions = eng.retransmissions;
    reconnects = eng.reconnects;
    recoveries_observed = eng.recoveries_observed;
    batches_sent = eng.batches_sent;
    frames_sent = eng.frames_sent;
    downgrades = eng.downgrades;
    schema_rejects = List.rev eng.schema_rejects;
    peak_sampled_bits;
    timed_out;
    failures = List.rev eng.op_failures;
    health =
      List.init eng.cfg.n (fun s ->
          {
            sh_server = s;
            sh_connects = eng.connects.(s);
            sh_dial_failures = eng.dial_failures.(s);
            sh_fail_streak = eng.fail_streak.(s);
          });
  }

let invoke_due eng =
  if eng.cfg.think_ms > 0 then
    Array.iter
      (fun cl ->
        if cl.current_op = None && cl.queue <> [] && now_ms eng >= cl.ready_at
        then invoke_next eng cl)
      eng.clients

(* A server closing mid-write (crash, slow-close fault) must surface
   as EPIPE on the socket, not kill the whole client process. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let drive eng =
  ignore_sigpipe ();
  ensure_conns eng;
  (* Invoke every client's first operation, in cid order — the same
     deterministic start the simulated transports use. *)
  Array.iter (fun cl -> invoke_next eng cl) eng.clients;
  let timed_out = ref false in
  while (not (all_done eng)) && not !timed_out do
    if now_ms eng > float_of_int eng.cfg.deadline_ms then begin
      timed_out := true;
      (* The deadline is a typed failure, not a silent hang: every
         in-flight operation is unwound and recorded. *)
      fail_in_flight eng Deadline_expired
    end
    else begin
      ensure_conns eng;
      invoke_due eng;
      fire_retransmits eng;
      fire_sampling eng;
      sweep_exhausted eng;
      fire_flushes eng;
      select_round eng 0.02;
      resume_runnable eng
    end
  done;
  let wall_ms = now_ms eng in
  Array.iter
    (fun st ->
      match st with
      | Up c -> ( try Unix.close c.fd with Unix.Unix_error _ -> ())
      | Down _ -> ())
    eng.conns;
  let final_stats =
    fetch_stats ~timeout_ms:5000 ~sockdir:eng.cfg.sockdir
      ~servers:(List.init eng.cfg.n Fun.id) ()
  in
  report_of eng ~wall_ms ~final_stats ~timed_out:!timed_out

let run_workload ?hooks ~algorithm ~seed ~workload cfg =
  drive (create ?hooks ~algorithm ~seed ~workload cfg)

let run_keyed ?hooks ~algorithm ~seed ~workload cfg =
  let eng =
    create ?hooks ~algorithm ~seed
      ~workload:(Array.map (List.map snd) workload)
      cfg
  in
  Array.iteri
    (fun i ops -> eng.clients.(i).key_queue <- List.map fst ops)
    workload;
  drive eng

(* ------------------------------------------------------------------ *)
(* The open loop                                                        *)
(* ------------------------------------------------------------------ *)

type open_config = {
  ol_rate : float;
  ol_duration_ms : int;
  ol_keys : int;
  ol_zipf : float;
  ol_write_ratio : float;
  ol_max_inflight : int;
  ol_value : int -> bytes;
}

let default_open_config =
  {
    ol_rate = 500.0;
    ol_duration_ms = 10_000;
    ol_keys = 100;
    ol_zipf = 0.0;
    ol_write_ratio = 0.5;
    ol_max_inflight = 512;
    ol_value = (fun i -> Bytes.of_string (Printf.sprintf "v%08d" i));
  }

let key_name r = Printf.sprintf "k%05d" r

(* Key sampler over ranks [0, keys): [zipf = 0] is uniform, otherwise
   the Zipfian exponent (cdf inverted by binary search).  Rank-to-name
   mapping is dense; the consistent hash scatters hot ranks over
   shards. *)
let make_key_sampler ~keys ~zipf prng =
  if keys <= 1 then fun () -> 0
  else if zipf <= 0.0 then fun () -> Sb_util.Prng.int prng keys
  else begin
    let cdf = Array.make keys 0.0 in
    let acc = ref 0.0 in
    for r = 0 to keys - 1 do
      acc := !acc +. (1.0 /. (float_of_int (r + 1) ** zipf));
      cdf.(r) <- !acc
    done;
    let total = !acc in
    fun () ->
      let u = Sb_util.Prng.float prng total in
      let lo = ref 0 and hi = ref (keys - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) > u then hi := mid else lo := mid + 1
      done;
      !lo
  end

let run_open ?hooks ~algorithm ~seed ocfg cfg =
  if ocfg.ol_rate <= 0.0 then invalid_arg "Sdk.run_open: rate must be > 0";
  if ocfg.ol_keys < 1 then invalid_arg "Sdk.run_open: keys must be >= 1";
  if ocfg.ol_max_inflight < 1 then
    invalid_arg "Sdk.run_open: max_inflight must be >= 1";
  let eng =
    create ?hooks ~open_loop:true ~algorithm ~seed
      ~workload:(Array.make ocfg.ol_max_inflight [])
      cfg
  in
  eng.free_slots <- List.init ocfg.ol_max_inflight Fun.id;
  (* Arrival/key randomness is independent of the client prngs: the
     open loop has no simulator twin to keep desc parity with. *)
  let a_prng = Sb_util.Prng.create (seed lxor 0x5bd1e995) in
  let sample_key =
    make_key_sampler ~keys:ocfg.ol_keys ~zipf:ocfg.ol_zipf a_prng
  in
  let duration = float_of_int ocfg.ol_duration_ms in
  (* Poisson arrivals: exponential inter-arrival gaps, in ms. *)
  let interarrival () =
    let u = Sb_util.Prng.float a_prng 1.0 in
    -.log (1.0 -. u) /. ocfg.ol_rate *. 1000.0
  in
  let backlog = Queue.create () in
  let next_arrival = ref (interarrival ()) in
  let writes = ref 0 in
  (* Materialise every arrival whose intended time has passed, whether
     or not a slot is free: an arrival that must wait in the backlog
     keeps its intended start, so its queueing delay is measured —
     never omitted — by the latency it eventually reports. *)
  let gen_due () =
    let now = now_ms eng in
    while !next_arrival <= now && !next_arrival <= duration do
      let key = key_name (sample_key ()) in
      let kind =
        if Sb_util.Prng.float a_prng 1.0 < ocfg.ol_write_ratio then begin
          incr writes;
          Trace.Write (ocfg.ol_value !writes)
        end
        else Trace.Read
      in
      Queue.add (!next_arrival, key, kind) backlog;
      next_arrival := !next_arrival +. interarrival ()
    done
  in
  let rec assign () =
    match (eng.free_slots, Queue.peek_opt backlog) with
    | cid :: rest, Some (intended, key, kind) ->
      ignore (Queue.pop backlog);
      eng.free_slots <- rest;
      let cl = eng.clients.(cid) in
      cl.current_key <- key;
      start_op eng cl kind ~at:intended;
      assign ()
    | _ -> ()
  in
  ignore_sigpipe ();
  ensure_conns eng;
  let timed_out = ref false in
  let finished () =
    !next_arrival > duration && Queue.is_empty backlog && all_done eng
  in
  while (not (finished ())) && not !timed_out do
    if now_ms eng > float_of_int eng.cfg.deadline_ms then begin
      timed_out := true;
      fail_in_flight eng Deadline_expired
    end
    else begin
      ensure_conns eng;
      gen_due ();
      assign ();
      fire_retransmits eng;
      fire_sampling eng;
      sweep_exhausted eng;
      fire_flushes eng;
      (* Fine-grained while arrivals are still being injected (their
         timing is the experiment); relaxed once only the drain and
         its responses remain. *)
      let timeout = if now_ms eng <= duration then 0.002 else 0.02 in
      select_round eng timeout;
      resume_runnable eng;
      assign ()
    end
  done;
  let wall_ms = now_ms eng in
  Array.iter
    (fun st ->
      match st with
      | Up c -> ( try Unix.close c.fd with Unix.Unix_error _ -> ())
      | Down _ -> ())
    eng.conns;
  let final_stats =
    fetch_stats ~timeout_ms:5000 ~sockdir:eng.cfg.sockdir
      ~servers:(List.init eng.cfg.n Fun.id) ()
  in
  report_of eng ~wall_ms ~final_stats ~timed_out:!timed_out
