(** Versioned, length-prefixed binary wire codec for the register
    service.

    Every frame on a connection is [u32 length] (big endian) followed by
    [length] body bytes; the body starts with a one-byte protocol
    version and a one-byte message tag.  Integers are 8-byte big-endian
    two's complement; byte strings and lists are [u32]-counted.  The
    payload vocabulary is exactly the simulator's: requests carry an
    {!Sb_sim.Rmwdesc.t} (the serializable form of the RMW closure a
    register triggers, mirroring [Sb_msgnet.Mp_runtime.message]),
    responses carry an {!Sb_sim.Rmwdesc.resp}.  The property tests in
    [test_service.ml] round-trip all of these against randomly generated
    values.

    {2 Versions and schemas}

    Three body layouts are spoken today.  Version 1 is PR 5's positional
    layout.  Version 2 appends an {e optional} [peer_schema] handshake
    field to [Hello]/[Welcome] (schema version + canonical hash, used by
    [Daemon]/[Sdk] to reject incompatible peers with a typed {!msg.Reject}
    instead of a decode crash) and adds the [Reject] message itself.
    Version 3 is the sharded-service layout: requests and responses gain
    a trailing key tag ([""] = the pre-v3 single register), [Stats]
    gains a per-shard aggregation tail, and two batch containers
    ({!msg.Req_batch}/{!msg.Resp_batch}) carry many keyed RMWs under one
    length prefix, amortising framing and syscalls.  Every evolution is
    append-only per record or a brand-new tag, which is what makes a
    mixed-version fleet work and is certified statically by
    [spacebounds schema check].

    Encoders default to the newest version; [?version] pins a frame to
    an older peer's negotiated version.  Decoders accept any version in
    [min_version..max_version] — a daemon pinned to [~max_version:1]
    behaves exactly like an old binary and cleanly rejects v2 frames.

    The full layout vocabulary is exported as a first-class
    {!Sb_schema.Schema.t} via {!schema_v}, defined next to the codec and
    locked to it by the drift gates in [dune runtest] and the golden
    [schemas/v<N>.json] files. *)

val version : int
(** The newest wire version this build speaks (4: adds the rw-write
    description tag for read/write base objects). *)

val min_version : int
(** The oldest version still decoded (1). *)

val max_frame_bytes : int

type nature = [ `Mutating | `Readonly | `Merge ]

type request = {
  rq_key : string;
      (** The target register.  [""] is the pre-v3 single register;
          travels only in v3+ framing, and encoding a non-empty key at an
          older version raises [Invalid_argument] (a keyed RMW must never
          silently collapse onto a peer's only register). *)
  rq_client : int;
  rq_ticket : int;
  rq_op : int;
  rq_nature : nature;
  rq_payload : Sb_storage.Block.t list;
      (** The declared code-block payload (Definition 2's channel
          contribution), also recoverable from [rq_desc]. *)
  rq_desc : Sb_sim.Rmwdesc.t;
}

type response = {
  rs_key : string;  (** Echo of the request's key (v3+ framing). *)
  rs_ticket : int;
  rs_op : int;
  rs_server : int;
  rs_incarnation : int;
      (** The serving incarnation — lets clients observe recoveries. *)
  rs_dedup : bool;
      (** The at-most-once table answered; the RMW was not re-applied. *)
  rs_resp : Sb_sim.Rmwdesc.resp;
}

(** Per-shard accounting (v3+): the Theorem 2 ceiling is a per-object
    bound, so the fleet check needs per-shard high-water marks, not just
    the process totals. *)
type shard_stat = {
  ss_shard : int;
  ss_incarnation : int;
  ss_keys : int;  (** Registers hosted by this shard. *)
  ss_storage_bits : int;  (** Bits stored across the shard's keys now. *)
  ss_max_bits : int;  (** Shard-total high-water mark. *)
  ss_max_key_bits : int;
      (** High-water mark of any {e single} key's bits — what the
          per-key Theorem 2 ceiling is checked against. *)
}

type stats = {
  st_server : int;
  st_incarnation : int;
  st_storage_bits : int;  (** Definition 2 block bits stored right now. *)
  st_max_bits : int;      (** High-water mark since this incarnation began. *)
  st_dedup_hits : int;
  st_applied : int;       (** RMWs applied (dedup hits excluded). *)
  st_keys : int;          (** Total keys hosted (v3+ framing, else 0). *)
  st_shards : shard_stat list;  (** Per-shard breakdown (v3+ framing). *)
}

type peer_schema = {
  ps_version : int;  (** The peer's schema (= wire) version. *)
  ps_hash : string;  (** 16-byte {!Sb_schema.Schema.hash} digest. *)
}

type reject_code = Unsupported_version | Incompatible_schema

type msg =
  | Hello of { client : int; schema : peer_schema option }
      (** [schema] travels only in v2 framing; encoding at v1 drops it
          (a v1 peer could not read it anyway). *)
  | Welcome of { server : int; incarnation : int; schema : peer_schema option }
  | Request of request
  | Response of response
  | Stats_query
  | Stats of stats
  | Reject of { rj_code : reject_code; rj_detail : string }
      (** Typed handshake refusal, v2-only: encoding at v1 raises
          [Invalid_argument] — v1 peers are refused by closing the
          connection, which they already handle. *)
  | Req_batch of request list
      (** Many key-tagged RMWs under one length prefix (v3-only;
          encoding at an older version raises [Invalid_argument]).  The
          server applies them in list order and answers with one
          {!msg.Resp_batch}. *)
  | Resp_batch of response list

val encode_msg : ?version:int -> msg -> bytes
(** The full frame, length prefix included — write it verbatim.
    [?version] (default {!version}) selects the body layout for the
    peer's negotiated version. *)

val decode_msg : ?max_version:int -> bytes -> (msg, string) result
(** Decodes a frame {e body} (the bytes after the length prefix),
    accepting versions [min_version..max_version] (default
    {!version}). *)

(** Durable server state, persisted by [Daemon] across restarts — one
    record per shard.  [p_state] is the [""] key's register (the only
    one a pre-v3 frame can hold); [p_keyed] lists every other key's
    state and travels only in v3+ framing (encoding a non-empty list at
    an older version raises [Invalid_argument] — durable keys must never
    be silently dropped). *)
type persisted = {
  p_incarnation : int;
  p_state : Sb_storage.Objstate.t;
  p_keyed : (string * Sb_storage.Objstate.t) list;
}

val encode_persisted : ?version:int -> persisted -> bytes
val decode_persisted : ?max_version:int -> bytes -> (persisted, string) result

val seal_persisted : ?version:int -> persisted -> bytes
(** {!encode_persisted} wrapped in the state-file container: the
    framed record followed by a 16-byte Hash128 checksum of it.  The
    trailer lives outside the schema-described frame body, so the
    golden wire schemas are unaffected. *)

val unseal_persisted :
  ?max_version:int -> bytes -> (persisted, string) result
(** Verifies the container shape (length prefix consistent with the
    file size) and the checksum before decoding; any truncation,
    bit-flip, or garbage yields [Error] — never an exception, never a
    silently-misdecoded state. *)

(** Incremental frame extraction over a byte stream. *)
module Reader : sig
  type t

  val create : ?max_version:int -> unit -> t
  (** [max_version] (default {!version}) bounds accepted frame
      versions, like {!decode_msg}. *)

  val feed : t -> bytes -> int -> int -> unit
  (** [feed t buf off len] appends [len] bytes of [buf] at [off]. *)

  val next : t -> (msg option, string) result
  (** The next complete frame, [Ok None] if more bytes are needed,
      [Error _] on a malformed frame (the connection should be
      dropped).  Never raises, whatever the bytes. *)
end

val equal_msg : msg -> msg -> bool
val pp_msg : Format.formatter -> msg -> unit

(** {2 The programmatic schema} *)

val schema_v : version:int -> Sb_schema.Schema.t
(** The layout description of a supported wire version, with roots
    ["msg"] and ["persisted"].  Raises [Invalid_argument] outside
    [min_version..version]. *)

val schema : Sb_schema.Schema.t
(** [schema_v ~version]. *)

val schema_hash : string
(** 16-byte digest of {!schema} — what [Hello]/[Welcome] carry. *)

val schema_hash_hex : string
