(** Versioned, length-prefixed binary wire codec for the register
    service.

    Every frame on a connection is [u32 length] (big endian) followed by
    [length] body bytes; the body starts with a one-byte protocol
    {!version} and a one-byte message tag.  Integers are 8-byte
    big-endian two's complement; byte strings and lists are
    [u32]-counted.  The payload vocabulary is exactly the simulator's:
    requests carry an {!Sb_sim.Rmwdesc.t} (the serializable form of the
    RMW closure a register triggers, mirroring
    [Sb_msgnet.Mp_runtime.message]), responses carry an
    {!Sb_sim.Rmwdesc.resp}.  The property tests in [test_service.ml]
    round-trip all of these against randomly generated values. *)

val version : int
val max_frame_bytes : int

type nature = [ `Mutating | `Readonly | `Merge ]

type request = {
  rq_client : int;
  rq_ticket : int;
  rq_op : int;
  rq_nature : nature;
  rq_payload : Sb_storage.Block.t list;
      (** The declared code-block payload (Definition 2's channel
          contribution), also recoverable from [rq_desc]. *)
  rq_desc : Sb_sim.Rmwdesc.t;
}

type response = {
  rs_ticket : int;
  rs_op : int;
  rs_server : int;
  rs_incarnation : int;
      (** The serving incarnation — lets clients observe recoveries. *)
  rs_dedup : bool;
      (** The at-most-once table answered; the RMW was not re-applied. *)
  rs_resp : Sb_sim.Rmwdesc.resp;
}

type stats = {
  st_server : int;
  st_incarnation : int;
  st_storage_bits : int;  (** Definition 2 block bits stored right now. *)
  st_max_bits : int;      (** High-water mark since this incarnation began. *)
  st_dedup_hits : int;
  st_applied : int;       (** RMWs applied (dedup hits excluded). *)
}

type msg =
  | Hello of { client : int }
  | Welcome of { server : int; incarnation : int }
  | Request of request
  | Response of response
  | Stats_query
  | Stats of stats

val encode_msg : msg -> bytes
(** The full frame, length prefix included — write it verbatim. *)

val decode_msg : bytes -> (msg, string) result
(** Decodes a frame {e body} (the bytes after the length prefix). *)

(** Durable server state, persisted by [Daemon] across restarts. *)
type persisted = { p_incarnation : int; p_state : Sb_storage.Objstate.t }

val encode_persisted : persisted -> bytes
val decode_persisted : bytes -> (persisted, string) result

(** Incremental frame extraction over a byte stream. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed t buf off len] appends [len] bytes of [buf] at [off]. *)

  val next : t -> (msg option, string) result
  (** The next complete frame, [Ok None] if more bytes are needed,
      [Error _] on a malformed frame (the connection should be
      dropped). *)
end

val equal_msg : msg -> msg -> bool
val pp_msg : Format.formatter -> msg -> unit
