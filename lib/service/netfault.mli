(** Socket-layer fault-injection hooks for the live service.

    {!Daemon} and {!Sdk} consult a [t] at two points: when a connection
    is dialled or accepted, and once per {e outbound} frame (faulting
    each side's output covers both directions of the wire).  The
    default {!none} passes everything through untouched; the seeded
    policies that drop, delay, duplicate, and fragment frames are
    built from a fault {e plan} by [Sb_faults.Live] — the service
    layer itself knows nothing about plans or probabilities.

    Frames are self-delimiting (u32 length prefix), so frame-level
    faults keep the byte stream decodable: dropping a frame removes it
    whole, duplicating appends a second copy, and fragmenting splits
    its bytes into delayed segments that arrive as adversarial partial
    writes through [Wire.Reader].  Byte corruption is deliberately not
    in the vocabulary — a real kernel does not flip stream bytes, and
    corruption detection belongs to the disk layer, where persisted
    records are checksummed. *)

type action =
  | Pass  (** Enqueue the frame unchanged, now. *)
  | Drop  (** Discard the frame silently (the peer never sees it). *)
  | Emit of (int * bytes) list
      (** Replace the frame with scheduled segments
          [(delay_ms, chunk)], emitted in list order with at least the
          given delay each — fragmentation, duplication, and delay are
          all spellings of this.  Segment order is preserved relative
          to every later frame on the same connection. *)
  | Emit_close of (int * bytes) list
      (** Emit the segments, then close the connection — a slow-close
          that can leave the peer holding a partial frame. *)

type t = {
  nf_accept : server:int -> bool;
      (** Consulted by the daemon hosting [server] on every accept;
          [false] closes the fresh connection immediately (the client
          sees a refused/reset dial). *)
  nf_connect : server:int -> bool;
      (** Consulted by the SDK before dialling [server]; [false] is
          treated as a failed dial (backoff applies). *)
  nf_frame : server:int -> bytes -> action;
      (** Consulted per outbound frame.  On the daemon side [server]
          is the hosted server id; on the SDK side it is the peer
          server the frame is addressed to. *)
}

val none : t
(** Pass-through hooks: fault-free behaviour, zero overhead. *)

val frame_tag : bytes -> int option
(** The wire tag of an encoded frame (byte 5, after the u32 length and
    the version byte), if the frame is long enough to carry one. *)

val is_handshake : bytes -> bool
(** True for [Hello]/[Welcome]/[Reject] frames — policies pass these
    through so fault campaigns exercise the data path, not the
    (idempotent, retried-on-reconnect) handshake. *)
