module D = Sb_sim.Rmwdesc
module Sch = Sb_schema.Schema

let sockpath ~sockdir i = Filename.concat sockdir (Printf.sprintf "server-%d.sock" i)

let statefile ~statedir i =
  Filename.concat statedir (Printf.sprintf "server-%d.state" i)

(* ------------------------------------------------------------------ *)
(* Durable state: framed [Wire.persisted] in a file, written            *)
(* atomically (temp + rename) after every mutating RMW.                 *)
(* ------------------------------------------------------------------ *)

let save_state ~version file (p : Wire.persisted) =
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  let buf = Wire.encode_persisted ~version p in
  output_bytes oc buf;
  close_out oc;
  Sys.rename tmp file

let load_state ~max_version file : Wire.persisted option =
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let buf = Bytes.create len in
    really_input ic buf 0 len;
    close_in ic;
    if len < 4 then None
    else
      let body = Bytes.sub buf 4 (len - 4) in
      match Wire.decode_persisted ~max_version body with
      | Ok p -> Some p
      | Error _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Connections                                                          *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  out : Buffer.t;
  mutable peer_version : int;
      (** Negotiated at [Hello]; replies are framed at this version. *)
  mutable closing : bool;
      (** Close after the out buffer drains (a [Reject] was sent). *)
  mutable closed : bool;
}

type server = {
  sid : int;
  core : Server_core.t;
  listen_fd : Unix.file_descr;
  state_path : string option;
  wire_version : int;
  own_schema : Wire.peer_schema;
  mutable conns : conn list;
}

let enqueue conn msg =
  Buffer.add_bytes conn.out (Wire.encode_msg ~version:conn.peer_version msg)

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let persist srv =
  match srv.state_path with
  | None -> ()
  | Some file ->
    save_state ~version:srv.wire_version file
      {
        Wire.p_incarnation = Server_core.incarnation srv.core;
        p_state = Server_core.state srv.core;
      }

(* Connect-time schema negotiation.  A v1 client's [Hello] carries no
   schema: serve it at v1 framing.  A v2+ client is served at
   min(ours, theirs) — cross-version pairs are certified
   decode-compatible at build time by [spacebounds schema check] — but
   a peer claiming {e our} schema version with a {e different} layout
   hash is drifted, and gets a typed [Reject] instead of decode
   crashes later. *)
let handle_hello srv conn (peer : Wire.peer_schema option) =
  match peer with
  | Some ps
    when ps.Wire.ps_version = srv.wire_version
         && not (String.equal ps.Wire.ps_hash srv.own_schema.Wire.ps_hash) ->
    conn.peer_version <- min srv.wire_version (max 2 Wire.min_version);
    enqueue conn
      (Wire.Reject
         {
           rj_code = Wire.Incompatible_schema;
           rj_detail =
             Printf.sprintf "schema v%d hash mismatch: ours %s, peer %s"
               srv.wire_version
               (Sch.hash_hex (Wire.schema_v ~version:srv.wire_version))
               (String.concat ""
                  (List.map
                     (fun c -> Printf.sprintf "%02x" (Char.code c))
                     (List.init
                        (String.length ps.Wire.ps_hash)
                        (String.get ps.Wire.ps_hash))));
         });
    conn.closing <- true
  | Some ps when ps.Wire.ps_version < Wire.min_version ->
    conn.peer_version <- min srv.wire_version (max 2 Wire.min_version);
    enqueue conn
      (Wire.Reject
         {
           rj_code = Wire.Unsupported_version;
           rj_detail =
             Printf.sprintf "peer schema v%d below minimum %d"
               ps.Wire.ps_version Wire.min_version;
         });
    conn.closing <- true
  | _ ->
    let negotiated =
      match peer with
      | None -> 1
      | Some ps -> max 1 (min srv.wire_version ps.Wire.ps_version)
    in
    conn.peer_version <- negotiated;
    enqueue conn
      (Wire.Welcome
         {
           server = srv.sid;
           incarnation = Server_core.incarnation srv.core;
           schema = (if negotiated >= 2 then Some srv.own_schema else None);
         })

let handle_msg srv conn (msg : Wire.msg) =
  match msg with
  | Wire.Hello { client = _; schema } -> handle_hello srv conn schema
  | Wire.Request rq ->
    let rmw = D.apply rq.Wire.rq_desc in
    let oc =
      Server_core.handle srv.core ~client:rq.Wire.rq_client
        ~ticket:rq.Wire.rq_ticket ~nature:rq.Wire.rq_nature rmw
    in
    if (not oc.Server_core.dedup_hit) && oc.Server_core.after != oc.Server_core.before
    then persist srv;
    enqueue conn
      (Wire.Response
         {
           rs_ticket = rq.Wire.rq_ticket;
           rs_op = rq.Wire.rq_op;
           rs_server = srv.sid;
           rs_incarnation = Server_core.incarnation srv.core;
           rs_dedup = oc.Server_core.dedup_hit;
           rs_resp = oc.Server_core.resp;
         })
  | Wire.Stats_query ->
    enqueue conn
      (Wire.Stats
         {
           st_server = srv.sid;
           st_incarnation = Server_core.incarnation srv.core;
           st_storage_bits = Server_core.storage_bits srv.core;
           st_max_bits = Server_core.max_bits srv.core;
           st_dedup_hits = Server_core.dedup_hits srv.core;
           st_applied = Server_core.applied_count srv.core;
         })
  | Wire.Welcome _ | Wire.Response _ | Wire.Stats _ | Wire.Reject _ ->
    (* Server-to-client messages arriving at a server: drop the peer. *)
    close_conn conn

let read_conn srv conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn conn
  | n ->
    Wire.Reader.feed conn.reader buf 0 n;
    let rec drain () =
      if (not conn.closed) && not conn.closing then
        match Wire.Reader.next conn.reader with
        | Ok None -> ()
        | Ok (Some msg) ->
          handle_msg srv conn msg;
          drain ()
        | Error _ -> close_conn conn
    in
    drain ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn conn

let write_conn conn =
  let pending = Buffer.to_bytes conn.out in
  match Unix.write conn.fd pending 0 (Bytes.length pending) with
  | n ->
    Buffer.clear conn.out;
    if n < Bytes.length pending then
      Buffer.add_subbytes conn.out pending n (Bytes.length pending - n)
    else if conn.closing then close_conn conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn conn

let accept_conn srv =
  match Unix.accept srv.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    srv.conns <-
      {
        fd;
        reader = Wire.Reader.create ~max_version:srv.wire_version ();
        out = Buffer.create 256;
        peer_version = 1;
        closing = false;
        closed = false;
      }
      :: srv.conns
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

(* ------------------------------------------------------------------ *)
(* The event loop                                                       *)
(* ------------------------------------------------------------------ *)

let interrupted = ref false

let install_signals () =
  let handler = Sys.Signal_handle (fun _ -> interrupted := true) in
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let make_server ?statedir ~dedup ~wire_version ~sockdir ~init_obj sid =
  let core =
    let fresh () = Server_core.create ~dedup (init_obj sid) in
    match statedir with
    | None -> fresh ()
    | Some dir -> (
      match load_state ~max_version:wire_version (statefile ~statedir:dir sid) with
      | Some p ->
        (* Restarting over a persisted state is a recovery: the
           at-most-once table died with the process, so the server
           comes back in a fresh incarnation. *)
        Server_core.create ~dedup ~incarnation:(p.Wire.p_incarnation + 1)
          p.Wire.p_state
      | None -> fresh ())
  in
  let path = sockpath ~sockdir sid in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (ADDR_UNIX path);
  Unix.listen listen_fd 64;
  let srv =
    {
      sid;
      core;
      listen_fd;
      state_path = Option.map (fun d -> statefile ~statedir:d sid) statedir;
      wire_version;
      own_schema =
        {
          Wire.ps_version = wire_version;
          ps_hash = Sch.hash (Wire.schema_v ~version:wire_version);
        };
      conns = [];
    }
  in
  persist srv;
  srv

let run ?(dedup = true) ?(wire_version = Wire.version) ?statedir ?stop ~sockdir
    ~servers ~init_obj () =
  if wire_version < Wire.min_version || wire_version > Wire.version then
    invalid_arg
      (Printf.sprintf "Daemon.run: wire_version %d outside %d..%d" wire_version
         Wire.min_version Wire.version);
  interrupted := false;
  install_signals ();
  (match statedir with
   | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
   | _ -> ());
  if not (Sys.file_exists sockdir) then Unix.mkdir sockdir 0o755;
  let srvs =
    List.map (make_server ?statedir ~dedup ~wire_version ~sockdir ~init_obj) servers
  in
  let should_stop () =
    !interrupted || (match stop with Some f -> f () | None -> false)
  in
  let finished = ref false in
  while not !finished do
    if should_stop () then finished := true
    else begin
      List.iter (fun s -> s.conns <- List.filter (fun c -> not c.closed) s.conns)
        srvs;
      let rds =
        List.concat_map
          (fun s -> s.listen_fd :: List.map (fun c -> c.fd) s.conns)
          srvs
      in
      let wrs =
        List.concat_map
          (fun s ->
            List.filter_map
              (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
              s.conns)
          srvs
      in
      match Unix.select rds wrs [] 0.2 with
      | readable, writable, _ ->
        List.iter
          (fun s ->
            if List.memq s.listen_fd readable then accept_conn s;
            List.iter
              (fun c ->
                if (not c.closed) && List.memq c.fd readable then read_conn s c)
              s.conns;
            List.iter
              (fun c ->
                if
                  (not c.closed) && List.memq c.fd writable
                  && Buffer.length c.out > 0
                then write_conn c)
              s.conns)
          srvs
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    end
  done;
  List.iter
    (fun s ->
      List.iter close_conn s.conns;
      (try Unix.close s.listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink (sockpath ~sockdir s.sid) with Unix.Unix_error _ -> ())
    srvs
