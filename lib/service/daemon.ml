module D = Sb_sim.Rmwdesc
module Sch = Sb_schema.Schema

let sockpath ~sockdir i = Filename.concat sockdir (Printf.sprintf "server-%d.sock" i)

let statefile ~statedir i =
  Filename.concat statedir (Printf.sprintf "server-%d.state" i)

(* Shard 0 of a single-shard server keeps the historical file name, so
   pre-sharding state files restart unchanged under the default
   [~shards:1]. *)
let statefile_shard ~statedir ~shards i j =
  if shards = 1 then statefile ~statedir i
  else Filename.concat statedir (Printf.sprintf "server-%d-shard-%d.state" i j)

(* ------------------------------------------------------------------ *)
(* Durable state: a checksummed [Wire.persisted] container in a file,   *)
(* written atomically (temp + fsync + rename + directory fsync) after   *)
(* every mutating RMW.                                                  *)
(* ------------------------------------------------------------------ *)

let fsync_dir dir =
  (* Persist the rename itself.  Directory fsync is a Linux-ism some
     filesystems refuse; a refusal only loses the last durability
     notch, so it is best-effort. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    (try Unix.close dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let save_state ?(before_rename = fun () -> ()) ~version file
    (p : Wire.persisted) =
  let tmp = file ^ ".tmp" in
  let buf = Wire.seal_persisted ~version p in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let len = Bytes.length buf in
  let rec write_all off =
    if off < len then write_all (off + Unix.write fd buf off (len - off))
  in
  write_all 0;
  (* The temp file must be on disk before the rename publishes it:
     renaming an unsynced file is exactly the torn-write window where a
     crash leaves a half-written file as the durable state. *)
  Unix.fsync fd;
  Unix.close fd;
  before_rename ();
  Sys.rename tmp file;
  fsync_dir (Filename.dirname file)

type load_result =
  | Loaded of Wire.persisted
  | Absent
  | Corrupt of string

(* Never raises and never guesses: a state file either verifies its
   checksum and decodes exactly, or it is [Corrupt] — truncations,
   bit-flips, and garbage all land there deterministically. *)
let load_state ~max_version file : load_result =
  if not (Sys.file_exists file) then Absent
  else
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let buf = Bytes.create len in
          really_input ic buf 0 len;
          buf)
    with
    | buf -> (
      match Wire.unseal_persisted ~max_version buf with
      | Ok p -> Loaded p
      | Error e -> Corrupt e)
    | exception Sys_error e -> Corrupt e
    | exception End_of_file -> Corrupt "unreadable state file"

let quarantine_path file = file ^ ".corrupt"

(* ------------------------------------------------------------------ *)
(* Crash points: deterministic process aborts around the persist path   *)
(* ------------------------------------------------------------------ *)

type crash_stage = Crash_before_write | Crash_before_rename | Crash_after_rename

type crash_point = { cp_stage : crash_stage; cp_persist : int }

let crash_point_of_string s =
  let parse stage rest =
    match int_of_string_opt rest with
    | Some n when n >= 1 -> Ok { cp_stage = stage; cp_persist = n }
    | _ -> Error (Printf.sprintf "bad crash-point count %S" rest)
  in
  match String.index_opt s ':' with
  | Some i -> (
    let key = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match key with
    | "persist" -> parse Crash_before_rename rest
    | "persist-pre" -> parse Crash_before_write rest
    | "persist-post" -> parse Crash_after_rename rest
    | k -> Error (Printf.sprintf "unknown crash point %S" k))
  | None ->
    Error
      (Printf.sprintf
         "crash point %S: expected persist:<n>, persist-pre:<n>, or \
          persist-post:<n>"
         s)

let crash_point_to_string cp =
  Printf.sprintf "%s:%d"
    (match cp.cp_stage with
    | Crash_before_write -> "persist-pre"
    | Crash_before_rename -> "persist"
    | Crash_after_rename -> "persist-post")
    cp.cp_persist

(* Simulate a hard crash: no cleanup, no at_exit, sockets left behind
   — indistinguishable from SIGKILL to everyone else. *)
let crash_now cp =
  Printf.eprintf "daemon: crash point %s reached, aborting\n%!"
    (crash_point_to_string cp);
  Unix._exit 70

(* ------------------------------------------------------------------ *)
(* Connections                                                          *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  out : Buffer.t;
  delayed : (float * bytes) Queue.t;
      (** Fault-delayed output segments, FIFO by enqueue order with a
          per-segment due time — order is preserved (a later segment
          never overtakes an earlier one), so the byte stream stays
          frame-decodable however the hooks slice it. *)
  mutable peer_version : int;
      (** Negotiated at [Hello]; replies are framed at this version. *)
  mutable closing : bool;
      (** Close after the out buffer drains (a [Reject] was sent, or a
          fault hook asked for a slow close). *)
  mutable closed : bool;
}

(* One shard: a keyed [Server_core] with its own state file and
   incarnation.  Keys are routed to shards by the consistent-hash ring
   below; all of a server's shards live behind the same listen socket
   and the same event loop (or the same domain when the loops are
   spread across cores). *)
type shard = {
  sh_id : int;
  sh_core : Server_core.t;
  sh_path : string option;
  mutable sh_dirty : bool;
      (* Set by the request path, cleared by the per-round group
         commit: every frame read in one event-loop round shares one
         persist (two fsyncs) per touched shard. *)
}

type server = {
  sid : int;
  shards : shard array;
  ring : Sb_kv.Shard.t;
  listen_fd : Unix.file_descr;
  wire_version : int;
  own_schema : Wire.peer_schema;
  hooks : Netfault.t;
  started : float;
  crash : (crash_point * int ref) option;
      (** Crash-point config and the persist counter it watches — the
          counter is shared across the servers a process hosts, so
          [persist:<n>] means "this process's nth persist". *)
  mutable conns : conn list;
}

let shard_of_key srv key = srv.shards.(Sb_kv.Shard.lookup srv.ring key)

(* The server-level incarnation (Welcome, v≤2 stats): all shards crash
   and recover together with the process, so the max is what a
   single-register client means by "the server's incarnation". *)
let server_incarnation srv =
  Array.fold_left
    (fun acc sh -> max acc (Server_core.incarnation sh.sh_core))
    0 srv.shards

let now_ms srv = (Unix.gettimeofday () -. srv.started) *. 1000.0

(* Queue output behind any fault-delayed segments so bytes never
   reorder; segments with no pending predecessor and no delay go
   straight to the out buffer. *)
let push_out srv conn segments =
  let now = now_ms srv in
  List.iter
    (fun (delay_ms, chunk) ->
      if delay_ms <= 0 && Queue.is_empty conn.delayed then
        Buffer.add_bytes conn.out chunk
      else Queue.add (now +. float_of_int (max 0 delay_ms), chunk) conn.delayed)
    segments

let flush_delayed srv conn =
  let now = now_ms srv in
  let rec go () =
    match Queue.peek_opt conn.delayed with
    | Some (due, chunk) when due <= now ->
      ignore (Queue.pop conn.delayed);
      Buffer.add_bytes conn.out chunk;
      go ()
    | _ -> ()
  in
  go ()

let enqueue srv conn msg =
  let frame = Wire.encode_msg ~version:conn.peer_version msg in
  match srv.hooks.Netfault.nf_frame ~server:srv.sid frame with
  | Netfault.Pass -> push_out srv conn [ (0, frame) ]
  | Netfault.Drop -> ()
  | Netfault.Emit segments -> push_out srv conn segments
  | Netfault.Emit_close segments ->
    push_out srv conn segments;
    conn.closing <- true

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let persist srv sh =
  match sh.sh_path with
  | None -> ()
  | Some file ->
    let entries = Server_core.entries sh.sh_core in
    let p =
      {
        Wire.p_incarnation = Server_core.incarnation sh.sh_core;
        p_state = Server_core.state sh.sh_core;
        p_keyed = List.filter (fun (k, _) -> k <> "") entries;
      }
    in
    (* Keyed states need v3 frames; a daemon pinned below v3 never
       receives keyed traffic (its reader rejects v3 frames), so its
       [p_keyed] stays empty and the pinned version is honoured. *)
    let version =
      if p.Wire.p_keyed = [] then srv.wire_version else max srv.wire_version 3
    in
    (match srv.crash with
     | None -> save_state ~version file p
     | Some (cp, count) ->
       incr count;
       let armed = !count = cp.cp_persist in
       if armed && cp.cp_stage = Crash_before_write then crash_now cp;
       save_state
         ~before_rename:(fun () ->
           if armed && cp.cp_stage = Crash_before_rename then crash_now cp)
         ~version file p;
       if armed && cp.cp_stage = Crash_after_rename then crash_now cp)

(* Connect-time schema negotiation.  A v1 client's [Hello] carries no
   schema: serve it at v1 framing.  A v2+ client is served at
   min(ours, theirs) — cross-version pairs are certified
   decode-compatible at build time by [spacebounds schema check] — but
   a peer claiming {e our} schema version with a {e different} layout
   hash is drifted, and gets a typed [Reject] instead of decode
   crashes later. *)
let handle_hello srv conn (peer : Wire.peer_schema option) =
  match peer with
  | Some ps
    when ps.Wire.ps_version = srv.wire_version
         && not (String.equal ps.Wire.ps_hash srv.own_schema.Wire.ps_hash) ->
    conn.peer_version <- min srv.wire_version (max 2 Wire.min_version);
    enqueue srv conn
      (Wire.Reject
         {
           rj_code = Wire.Incompatible_schema;
           rj_detail =
             Printf.sprintf "schema v%d hash mismatch: ours %s, peer %s"
               srv.wire_version
               (Sch.hash_hex (Wire.schema_v ~version:srv.wire_version))
               (String.concat ""
                  (List.map
                     (fun c -> Printf.sprintf "%02x" (Char.code c))
                     (List.init
                        (String.length ps.Wire.ps_hash)
                        (String.get ps.Wire.ps_hash))));
         });
    conn.closing <- true
  | Some ps when ps.Wire.ps_version < Wire.min_version ->
    conn.peer_version <- min srv.wire_version (max 2 Wire.min_version);
    enqueue srv conn
      (Wire.Reject
         {
           rj_code = Wire.Unsupported_version;
           rj_detail =
             Printf.sprintf "peer schema v%d below minimum %d"
               ps.Wire.ps_version Wire.min_version;
         });
    conn.closing <- true
  | _ ->
    let negotiated =
      match peer with
      | None -> 1
      | Some ps -> max 1 (min srv.wire_version ps.Wire.ps_version)
    in
    conn.peer_version <- negotiated;
    enqueue srv conn
      (Wire.Welcome
         {
           server = srv.sid;
           incarnation = server_incarnation srv;
           schema = (if negotiated >= 2 then Some srv.own_schema else None);
         })

(* Apply one keyed request to its shard; the caller decides when the
   touched shard is persisted (per request for singles, once per frame
   for batches — the batch is what amortises the two fsyncs). *)
let apply_request srv (rq : Wire.request) =
  let sh = shard_of_key srv rq.Wire.rq_key in
  let rmw = D.apply rq.Wire.rq_desc in
  let oc =
    Server_core.handle_key sh.sh_core ~key:rq.Wire.rq_key
      ~client:rq.Wire.rq_client ~ticket:rq.Wire.rq_ticket
      ~nature:rq.Wire.rq_nature rmw
  in
  let dirty =
    (not oc.Server_core.dedup_hit)
    && oc.Server_core.after != oc.Server_core.before
  in
  let resp =
    {
      Wire.rs_key = rq.Wire.rq_key;
      rs_ticket = rq.Wire.rq_ticket;
      rs_op = rq.Wire.rq_op;
      rs_server = srv.sid;
      rs_incarnation = Server_core.incarnation sh.sh_core;
      rs_dedup = oc.Server_core.dedup_hit;
      rs_resp = oc.Server_core.resp;
    }
  in
  (sh, dirty, resp)

let shard_stats srv =
  Array.to_list
    (Array.map
       (fun sh ->
         {
           Wire.ss_shard = sh.sh_id;
           ss_incarnation = Server_core.incarnation sh.sh_core;
           ss_keys = Server_core.key_count sh.sh_core;
           ss_storage_bits = Server_core.storage_bits sh.sh_core;
           ss_max_bits = Server_core.max_bits sh.sh_core;
           ss_max_key_bits = Server_core.max_key_bits sh.sh_core;
         })
       srv.shards)

let sum f srv = Array.fold_left (fun acc sh -> acc + f sh.sh_core) 0 srv.shards

let handle_msg srv conn (msg : Wire.msg) =
  match msg with
  | Wire.Hello { client = _; schema } -> handle_hello srv conn schema
  | Wire.Request rq when rq.Wire.rq_key <> "" && conn.peer_version < 3 ->
    (* A keyed RMW on a connection negotiated below v3 has no reply
       framing that can echo the key; a conforming client never does
       this, so drop the peer rather than mis-answer. *)
    close_conn conn
  | Wire.Request rq ->
    let sh, dirty, resp = apply_request srv rq in
    if dirty then sh.sh_dirty <- true;
    enqueue srv conn (Wire.Response resp)
  | Wire.Req_batch reqs
    when conn.peer_version < 3
         && List.exists (fun r -> r.Wire.rq_key <> "") reqs ->
    close_conn conn
  | Wire.Req_batch reqs ->
    (* Apply in list order, answer with one frame.  Touched shards are
       only marked dirty here; the event loop group-commits them after
       the whole read phase and before any response bytes hit a socket,
       the same durability order the single-request path keeps.  A
       batch can only arrive in a v3 frame, but the reply must still
       respect the negotiated version (a client that never said Hello
       is served at v1 and gets singles). *)
    let outcomes = List.map (apply_request srv) reqs in
    List.iter (fun (sh, dirty, _) -> if dirty then sh.sh_dirty <- true) outcomes;
    let resps = List.map (fun (_, _, r) -> r) outcomes in
    if conn.peer_version >= 3 then enqueue srv conn (Wire.Resp_batch resps)
    else List.iter (fun r -> enqueue srv conn (Wire.Response r)) resps
  | Wire.Stats_query ->
    enqueue srv conn
      (Wire.Stats
         {
           st_server = srv.sid;
           st_incarnation = server_incarnation srv;
           st_storage_bits = sum Server_core.storage_bits srv;
           st_max_bits = sum Server_core.max_bits srv;
           st_dedup_hits = sum Server_core.dedup_hits srv;
           st_applied = sum Server_core.applied_count srv;
           st_keys = sum Server_core.key_count srv;
           st_shards = shard_stats srv;
         })
  | Wire.Welcome _ | Wire.Response _ | Wire.Stats _ | Wire.Reject _
  | Wire.Resp_batch _ ->
    (* Server-to-client messages arriving at a server: drop the peer. *)
    close_conn conn

let read_conn srv conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn conn
  | n ->
    Wire.Reader.feed conn.reader buf 0 n;
    let rec drain () =
      if (not conn.closed) && not conn.closing then
        match Wire.Reader.next conn.reader with
        | Ok None -> ()
        | Ok (Some msg) ->
          handle_msg srv conn msg;
          drain ()
        | Error _ -> close_conn conn
    in
    drain ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn conn

let write_conn conn =
  let pending = Buffer.to_bytes conn.out in
  match Unix.write conn.fd pending 0 (Bytes.length pending) with
  | n ->
    Buffer.clear conn.out;
    if n < Bytes.length pending then
      Buffer.add_subbytes conn.out pending n (Bytes.length pending - n)
    else if conn.closing && Queue.is_empty conn.delayed then close_conn conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn conn

let accept_conn srv =
  match Unix.accept srv.listen_fd with
  | fd, _ ->
    if not (srv.hooks.Netfault.nf_accept ~server:srv.sid) then
      (* A refused accept: the peer's dial succeeds and then the
         connection resets — what a dying or overloaded daemon looks
         like from outside. *)
      (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      Unix.set_nonblock fd;
      srv.conns <-
        {
          fd;
          reader = Wire.Reader.create ~max_version:srv.wire_version ();
          out = Buffer.create 256;
          delayed = Queue.create ();
          peer_version = 1;
          closing = false;
          closed = false;
        }
        :: srv.conns
    end
  | exception Unix.Unix_error _ ->
    (* EAGAIN/EINTR, or a peer that reset before we accepted
       (ECONNABORTED) — all transient; never worth dying over. *)
    ()

(* ------------------------------------------------------------------ *)
(* The event loop                                                       *)
(* ------------------------------------------------------------------ *)

(* Atomic, not a plain ref: with [~domains:n] every event-loop domain
   polls the flag the signal handler (running on the main domain)
   sets. *)
let interrupted = Atomic.make false

let install_signals () =
  let handler = Sys.Signal_handle (fun _ -> Atomic.set interrupted true) in
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let make_shard ?statedir ~dedup ~wire_version ~shards ~init_obj sid j =
  let fresh () = Server_core.create ~dedup (init_obj sid) in
  let core =
    match statedir with
    | None -> fresh ()
    | Some dir -> (
      (* Keyed states are v3 frames whatever the serving version: a
         pinned daemon must still reload its own durable keys. *)
      let file = statefile_shard ~statedir:dir ~shards sid j in
      match load_state ~max_version:(max wire_version 3) file with
      | Loaded p ->
        (* Restarting over a persisted state is a recovery: the
           at-most-once table died with the process, so the shard
           comes back in a fresh incarnation. *)
        Server_core.load ~dedup ~incarnation:(p.Wire.p_incarnation + 1)
          ~initial:p.Wire.p_state p.Wire.p_keyed
      | Absent -> fresh ()
      | Corrupt reason ->
        (* Never load garbage, never crash: quarantine the damaged file
           for post-mortem and rejoin as a fresh base object.  Losing a
           base object's contents is a failure the protocols budget for
           (it spends one of the f tolerated failures); serving a
           misdecoded state would not be. *)
        (try Sys.rename file (quarantine_path file)
         with Sys_error _ -> (
           try Sys.remove file with Sys_error _ -> ()));
        Printf.eprintf
          "daemon: server %d shard %d state corrupt (%s); quarantined to %s, \
           recovering fresh\n\
           %!"
          sid j reason (quarantine_path file);
        fresh ())
  in
  {
    sh_id = j;
    sh_core = core;
    sh_path =
      Option.map (fun d -> statefile_shard ~statedir:d ~shards sid j) statedir;
    sh_dirty = false;
  }

let make_server ?statedir ~dedup ~wire_version ~shards ~ring ~sockdir ~init_obj
    ~hooks ~crash sid =
  let shard_arr =
    Array.init shards (make_shard ?statedir ~dedup ~wire_version ~shards ~init_obj sid)
  in
  let path = sockpath ~sockdir sid in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (ADDR_UNIX path);
  Unix.listen listen_fd 64;
  let srv =
    {
      sid;
      shards = shard_arr;
      ring;
      listen_fd;
      wire_version;
      own_schema =
        {
          Wire.ps_version = wire_version;
          ps_hash = Sch.hash (Wire.schema_v ~version:wire_version);
        };
      hooks;
      started = Unix.gettimeofday ();
      crash;
      conns = [];
    }
  in
  Array.iter (persist srv) srv.shards;
  srv

(* One select loop over a partition of the servers.  With [~domains:1]
   (the default) there is a single partition holding everything — the
   historical daemon.  With more domains each partition runs its own
   loop on its own domain: servers (and therefore shards and their
   object states) are partitioned, never shared, so there is no
   cross-domain locking anywhere on the request path. *)
let event_loop ~tick ~should_stop srvs =
  let finished = ref false in
  while not !finished do
    if should_stop () then finished := true
    else begin
      List.iter (fun s -> List.iter (flush_delayed s) s.conns) srvs;
      List.iter
        (fun s ->
          List.iter
            (fun c ->
              if
                c.closing && (not c.closed)
                && Buffer.length c.out = 0
                && Queue.is_empty c.delayed
              then close_conn c)
            s.conns)
        srvs;
      (* Prune after the slow-close sweep: a freshly closed fd in the
         select set is EBADF, which would take the whole process down. *)
      List.iter (fun s -> s.conns <- List.filter (fun c -> not c.closed) s.conns)
        srvs;
      let rds =
        List.concat_map
          (fun s -> s.listen_fd :: List.map (fun c -> c.fd) s.conns)
          srvs
      in
      let wrs =
        List.concat_map
          (fun s ->
            List.filter_map
              (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
              s.conns)
          srvs
      in
      match Unix.select rds wrs [] tick with
      | readable, _writable, _ ->
        List.iter
          (fun s ->
            if List.memq s.listen_fd readable then accept_conn s;
            List.iter
              (fun c ->
                if (not c.closed) && List.memq c.fd readable then read_conn s c)
              s.conns)
          srvs;
        (* Group commit: every shard dirtied by this round's read phase
           persists exactly once, before any response from the round is
           allowed onto a socket — the ack-after-fsync order of the
           per-request path, at a fraction of the fsyncs.  Under load
           the commit batch grows by itself: frames queue up behind a
           slow fsync and the next round persists them all together. *)
        List.iter
          (fun s ->
            Array.iter
              (fun sh ->
                if sh.sh_dirty then begin
                  persist s sh;
                  sh.sh_dirty <- false
                end)
              s.shards)
          srvs;
        (* Opportunistic flush: don't sit on this round's responses
           until the next select round says the fd is writable — a
           freshly drained socket almost always is, and write_conn
           already treats EAGAIN as "try again later". *)
        List.iter
          (fun s ->
            List.iter
              (fun c ->
                if (not c.closed) && Buffer.length c.out > 0 then write_conn c)
              s.conns)
          srvs
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    end
  done

let run ?(dedup = true) ?(wire_version = Wire.version) ?(shards = 1)
    ?(domains = 1) ?statedir ?stop ?(hooks = Netfault.none) ?crash_at ~sockdir
    ~servers ~init_obj () =
  if wire_version < Wire.min_version || wire_version > Wire.version then
    invalid_arg
      (Printf.sprintf "Daemon.run: wire_version %d outside %d..%d" wire_version
         Wire.min_version Wire.version);
  if shards < 1 then invalid_arg "Daemon.run: shards must be positive";
  if domains < 1 then invalid_arg "Daemon.run: domains must be positive";
  if domains > 1 && crash_at <> None then
    invalid_arg
      "Daemon.run: crash points count process-wide persists and need a single \
       event-loop domain";
  Atomic.set interrupted false;
  install_signals ();
  (match statedir with
   | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
   | _ -> ());
  if not (Sys.file_exists sockdir) then Unix.mkdir sockdir 0o755;
  let crash =
    (* One persist counter per process, whichever server persists. *)
    Option.map (fun cp -> (cp, ref 0)) crash_at
  in
  let ring = Sb_kv.Shard.create ~shards () in
  let srvs =
    List.map
      (make_server ?statedir ~dedup ~wire_version ~shards ~ring ~sockdir
         ~init_obj ~hooks ~crash)
      servers
  in
  let should_stop () =
    Atomic.get interrupted || (match stop with Some f -> f () | None -> false)
  in
  (* Delayed fault segments need a finer clock than the idle 200 ms
     select round. *)
  let tick = if hooks == Netfault.none then 0.2 else 0.02 in
  let jobs = min domains (List.length srvs) in
  if jobs <= 1 then event_loop ~tick ~should_stop srvs
  else begin
    (* Shard affinity by partition: server i is owned by domain
       i mod jobs, for its whole lifetime.  [Pool.run] claims one
       partition per domain; each loop touches only its own servers. *)
    let parts =
      Array.init jobs (fun d ->
          List.filteri (fun i _ -> i mod jobs = d) srvs)
    in
    Sb_parallel.Pool.run ~jobs jobs (fun d ->
        event_loop ~tick ~should_stop parts.(d))
  end;
  List.iter
    (fun s ->
      List.iter close_conn s.conns;
      (try Unix.close s.listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink (sockpath ~sockdir s.sid) with Unix.Unix_error _ -> ())
    srvs
