(** The socket client: runs the unmodified register protocols of
    [Sb_registers] against a live {!Daemon} cluster.

    Protocol code performs the same [Trigger]/[Await] effects it
    performs under the simulators; this engine interprets them over
    Unix-domain sockets — [Trigger] encodes the RMW's
    {!Sb_sim.Rmwdesc.t} into a {!Wire} request and arms a
    retransmission timer ({!Client_core.Retransmit}, shared with the
    simulated transport), [Await] parks the client fiber until a quorum
    of responses is in its {!Client_core.Mailbox}.  Dead servers are
    ridden out by retransmission and reconnection; recoveries are
    observed through incarnation bumps in responses.

    Determinism mirrors [Sb_msgnet.Mp_runtime]: one root PRNG split per
    client in cid order, operation ids from 1 at invocation, tickets
    from 1 at trigger — so a single-client seeded run triggers the
    identical description sequence on both transports (checked by the
    parity test in [test_service.ml]). *)

type config = {
  n : int;
  f : int;
  sockdir : string;
  rto_ms : int;            (** Initial retransmission timeout. *)
  max_attempts : int;      (** 0 = retry forever (rides out crashes). *)
  reconnect_ms : int;      (** Delay before re-dialling a dead server. *)
  sample_every_ms : int;   (** Storage-stats sampling period; 0 = off. *)
  deadline_ms : int;       (** Abort the run after this long. *)
  think_ms : int;          (** Closed-loop pacing: delay before each
                               client's next operation; 0 = back-to-back. *)
  batch_max : int;
      (** Per-connection request batching: triggered requests towards a
          v3+ peer are buffered and sent as one [Req_batch] frame of up
          to this many.  1 (the default) sends classic single-request
          frames; batching also disarms itself per server when the
          negotiated version is below 3.  Retransmissions are always
          single frames. *)
  flush_ms : int;
      (** A pending batch never waits longer than this for
          co-travellers (size may flush it sooner). *)
}

val default_config : n:int -> f:int -> sockdir:string -> config
(** [batch_max = 1], [flush_ms = 2]; see the field docs for the rest. *)

type sample = { at_ms : float; total_bits : int }
(** Total storage bits across all servers at one sampling instant
    (servers that missed the sampling round contribute their last
    reply; rounds with any server missing are skipped). *)

(** Why an operation was abandoned instead of completing. *)
type failure_reason =
  | Attempts_exhausted of int
      (** The retransmission budget ([max_attempts]) ran out on enough
          servers that the operation's quorum became unreachable; the
          payload is the deepest attempt count among its tickets. *)
  | Deadline_expired  (** Still in flight when [deadline_ms] struck. *)

type op_failure = {
  fl_op : int;
  fl_client : int;
  fl_kind : Sb_sim.Trace.op_kind;
  fl_at_ms : float;
  fl_reason : failure_reason;
}

type server_health = {
  sh_server : int;
  sh_connects : int;       (** Successful dials over the run. *)
  sh_dial_failures : int;  (** Refused/failed dials over the run. *)
  sh_fail_streak : int;
      (** Consecutive failures at end of run (0 = last contact was
          healthy).  While positive, reconnects back off exponentially
          (capped at 32x [reconnect_ms]) with seeded jitter. *)
}

exception Op_abandoned
(** Raised into an abandoned operation's fiber at its await point so
    protocol-level cleanup can run; the engine absorbs it. *)

type report = {
  trace : Sb_sim.Trace.t;
      (** Invoke/Return/Rmw_trigger events on a logical clock, ready
          for [Sb_spec.History.of_trace] and the regularity checkers. *)
  ops_invoked : int;
  ops_completed : int;
  wall_ms : float;
  latencies_ms : float list;  (** Per completed operation, in completion order. *)
  samples : sample list;  (** Chronological. *)
  final_stats : Wire.stats list;
      (** A quiescent stats round after the run (fresh connections). *)
  desc_log : Sb_sim.Rmwdesc.t list;
      (** Every triggered description, in trigger order — the protocol
          decisions, comparable across transports. *)
  retransmissions : int;
  reconnects : int;
  recoveries_observed : int;  (** Server incarnation bumps seen. *)
  batches_sent : int;
      (** [Req_batch] frames put on the wire (each carried ≥ 2
          requests); 0 whenever [batch_max = 1] or every peer
          negotiated below v3. *)
  frames_sent : int;  (** Every frame handed to a socket buffer. *)
  downgrades : int;
      (** Servers renegotiated down to wire v1 after an old daemon
          closed on a v2 [Hello] — the expected path when new clients
          meet an un-upgraded fleet. *)
  schema_rejects : (int * string) list;
      (** Typed [Wire.Reject] refusals (or welcome-hash mismatches
          detected client-side), by server id, chronological.  A
          rejected server is never re-dialled; a healthy mixed-version
          run has none. *)
  peak_sampled_bits : int;
  timed_out : bool;  (** The deadline cut the run short. *)
  failures : op_failure list;
      (** Typed per-operation failures, chronological.  With
          [max_attempts = 0] and no deadline pressure this is empty;
          it is never possible for an operation to silently hang. *)
  health : server_health list;  (** Per server, at end of run. *)
}

val run_workload :
  ?hooks:Netfault.t ->
  algorithm:Sb_sim.Runtime.algorithm ->
  seed:int ->
  workload:Sb_sim.Trace.op_kind list array ->
  config ->
  report
(** Drive the closed-loop workload (one fiber per array slot, next
    operation invoked as soon as the previous returns) to completion
    against the cluster reachable under [config.sockdir].  Operations
    address the [""] register — the pre-sharding single object.
    [hooks] (default {!Netfault.none}) inject socket-layer faults into
    the client's dials and outbound frames — the client-side half of a
    {!Sb_faults.Live} fault plane. *)

val run_keyed :
  ?hooks:Netfault.t ->
  algorithm:Sb_sim.Runtime.algorithm ->
  seed:int ->
  workload:(string * Sb_sim.Trace.op_kind) list array ->
  config ->
  report
(** {!run_workload} with a key per operation: each slot's operations
    run in order, each addressing the named register of the sharded
    daemon.  Non-[""] keys need a v3+ fleet — towards an older peer
    keyed frames are unencodable and are dropped (the operation fails
    by its retransmission/deadline budget rather than crashing the
    client). *)

(** {2 The open loop}

    Closed-loop clients measure a system that is never saturated by
    construction: each client waits for its previous operation, so a
    slow service throttles its own offered load and hides queueing
    delay (coordinated omission).  The open loop instead draws arrival
    times from a Poisson process at a target rate and starts each
    operation at its intended time — or queues it, with the intended
    time preserved, when all [ol_max_inflight] slots are busy — so
    reported latency includes every millisecond the service made an
    arrival wait. *)

type open_config = {
  ol_rate : float;  (** Target arrival rate, operations/second. *)
  ol_duration_ms : int;  (** Arrival-generation window. *)
  ol_keys : int;  (** Key-space size; keys are {!key_name}[ 0..K-1]. *)
  ol_zipf : float;
      (** 0 = uniform key popularity; otherwise the Zipfian exponent
          (rank-frequency skew; 0.99 is the YCSB-style default). *)
  ol_write_ratio : float;  (** Probability an arrival is a write. *)
  ol_max_inflight : int;
      (** Concurrent operation slots — the paper's concurrency [c] for
          the per-object Theorem 2 ceiling under this load. *)
  ol_value : int -> bytes;
      (** Payload for the [i]-th write (1-based, process-wide). *)
}

val default_open_config : open_config
(** 500 ops/s for 10 s over 100 uniform keys, half writes, 512 slots. *)

val key_name : int -> string
(** The wire key for rank [r] — shared with the loadgen's per-key
    accounting so external checks can address the same registers. *)

val run_open :
  ?hooks:Netfault.t ->
  algorithm:Sb_sim.Runtime.algorithm ->
  seed:int ->
  open_config ->
  config ->
  report
(** Drive the open-loop workload against the cluster under
    [config.sockdir] and drain it (arrival generation stops at
    [ol_duration_ms]; the run ends when every arrival has completed or
    failed, or at [deadline_ms]).  The report's [latencies_ms] are
    intended-start latencies (coordinated-omission-safe); its [trace]
    and [desc_log] are empty — an open-loop run's observables are
    counters, latencies and storage samples.  Batching applies as
    configured ([batch_max]/[flush_ms]). *)

val fetch_stats :
  ?timeout_ms:int -> sockdir:string -> servers:int list -> unit ->
  Wire.stats list
(** One stats round over fresh connections, retrying each server with
    select-bounded reads under its own [timeout_ms] budget (default
    5000; a slow server never starves the others); servers that never
    answer are omitted.  This is how the load generator checks the
    post-quiescence GC floor and how the CI smoke test asserts that
    killed servers were re-admitted. *)
