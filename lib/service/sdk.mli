(** The socket client: runs the unmodified register protocols of
    [Sb_registers] against a live {!Daemon} cluster.

    Protocol code performs the same [Trigger]/[Await] effects it
    performs under the simulators; this engine interprets them over
    Unix-domain sockets — [Trigger] encodes the RMW's
    {!Sb_sim.Rmwdesc.t} into a {!Wire} request and arms a
    retransmission timer ({!Client_core.Retransmit}, shared with the
    simulated transport), [Await] parks the client fiber until a quorum
    of responses is in its {!Client_core.Mailbox}.  Dead servers are
    ridden out by retransmission and reconnection; recoveries are
    observed through incarnation bumps in responses.

    Determinism mirrors [Sb_msgnet.Mp_runtime]: one root PRNG split per
    client in cid order, operation ids from 1 at invocation, tickets
    from 1 at trigger — so a single-client seeded run triggers the
    identical description sequence on both transports (checked by the
    parity test in [test_service.ml]). *)

type config = {
  n : int;
  f : int;
  sockdir : string;
  rto_ms : int;            (** Initial retransmission timeout. *)
  max_attempts : int;      (** 0 = retry forever (rides out crashes). *)
  reconnect_ms : int;      (** Delay before re-dialling a dead server. *)
  sample_every_ms : int;   (** Storage-stats sampling period; 0 = off. *)
  deadline_ms : int;       (** Abort the run after this long. *)
  think_ms : int;          (** Closed-loop pacing: delay before each
                               client's next operation; 0 = back-to-back. *)
}

val default_config : n:int -> f:int -> sockdir:string -> config

type sample = { at_ms : float; total_bits : int }
(** Total storage bits across all servers at one sampling instant
    (servers that missed the sampling round contribute their last
    reply; rounds with any server missing are skipped). *)

(** Why an operation was abandoned instead of completing. *)
type failure_reason =
  | Attempts_exhausted of int
      (** The retransmission budget ([max_attempts]) ran out on enough
          servers that the operation's quorum became unreachable; the
          payload is the deepest attempt count among its tickets. *)
  | Deadline_expired  (** Still in flight when [deadline_ms] struck. *)

type op_failure = {
  fl_op : int;
  fl_client : int;
  fl_kind : Sb_sim.Trace.op_kind;
  fl_at_ms : float;
  fl_reason : failure_reason;
}

type server_health = {
  sh_server : int;
  sh_connects : int;       (** Successful dials over the run. *)
  sh_dial_failures : int;  (** Refused/failed dials over the run. *)
  sh_fail_streak : int;
      (** Consecutive failures at end of run (0 = last contact was
          healthy).  While positive, reconnects back off exponentially
          (capped at 32x [reconnect_ms]) with seeded jitter. *)
}

exception Op_abandoned
(** Raised into an abandoned operation's fiber at its await point so
    protocol-level cleanup can run; the engine absorbs it. *)

type report = {
  trace : Sb_sim.Trace.t;
      (** Invoke/Return/Rmw_trigger events on a logical clock, ready
          for [Sb_spec.History.of_trace] and the regularity checkers. *)
  ops_invoked : int;
  ops_completed : int;
  wall_ms : float;
  latencies_ms : float list;  (** Per completed operation, in completion order. *)
  samples : sample list;  (** Chronological. *)
  final_stats : Wire.stats list;
      (** A quiescent stats round after the run (fresh connections). *)
  desc_log : Sb_sim.Rmwdesc.t list;
      (** Every triggered description, in trigger order — the protocol
          decisions, comparable across transports. *)
  retransmissions : int;
  reconnects : int;
  recoveries_observed : int;  (** Server incarnation bumps seen. *)
  downgrades : int;
      (** Servers renegotiated down to wire v1 after an old daemon
          closed on a v2 [Hello] — the expected path when new clients
          meet an un-upgraded fleet. *)
  schema_rejects : (int * string) list;
      (** Typed [Wire.Reject] refusals (or welcome-hash mismatches
          detected client-side), by server id, chronological.  A
          rejected server is never re-dialled; a healthy mixed-version
          run has none. *)
  peak_sampled_bits : int;
  timed_out : bool;  (** The deadline cut the run short. *)
  failures : op_failure list;
      (** Typed per-operation failures, chronological.  With
          [max_attempts = 0] and no deadline pressure this is empty;
          it is never possible for an operation to silently hang. *)
  health : server_health list;  (** Per server, at end of run. *)
}

val run_workload :
  ?hooks:Netfault.t ->
  algorithm:Sb_sim.Runtime.algorithm ->
  seed:int ->
  workload:Sb_sim.Trace.op_kind list array ->
  config ->
  report
(** Drive the closed-loop workload (one fiber per array slot, next
    operation invoked as soon as the previous returns) to completion
    against the cluster reachable under [config.sockdir].  [hooks]
    (default {!Netfault.none}) inject socket-layer faults into the
    client's dials and outbound frames — the client-side half of a
    {!Sb_faults.Live} fault plane. *)

val fetch_stats :
  ?timeout_ms:int -> sockdir:string -> servers:int list -> unit ->
  Wire.stats list
(** One stats round over fresh connections, retrying each server with
    select-bounded reads under its own [timeout_ms] budget (default
    5000; a slow server never starves the others); servers that never
    answer are omitted.  This is how the load generator checks the
    post-quiescence GC floor and how the CI smoke test asserts that
    killed servers were re-admitted. *)
