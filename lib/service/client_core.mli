(** Transport-agnostic client side of the register service: the quorum
    mailbox and the retransmission timer wheel, shared by the simulated
    transport ([Sb_msgnet.Mp_runtime]) and the socket client
    ({!Sdk}). *)

(** Responses received so far, keyed by ticket.  Responses can arrive
    before the client's await is even entered; awaits read whatever has
    accumulated. *)
module Mailbox : sig
  type t

  val create : unit -> t

  val record : t -> ticket:int -> obj:int -> Sb_sim.Rmwdesc.resp -> unit
  (** Later copies of the same ticket's response (retransmission after a
      lost reply) simply overwrite — the register RMWs answer duplicates
      deterministically. *)

  val find : t -> int -> (int * Sb_sim.Rmwdesc.resp) option
  val has : t -> int -> bool
  val satisfied : t -> tickets:int list -> quorum:int -> bool
  val responses_for :
    t -> tickets:int list -> (int * Sb_sim.Rmwdesc.resp) list
  (** In ticket-list order; only tickets with responses. *)
end

(** Per-ticket retransmission timers with exponential backoff.  The
    retained request is polymorphic: the simulator stores its message
    record, the socket client an encoded frame. *)
module Retransmit : sig
  type config = {
    rto : int;          (** Initial timeout (steps or milliseconds). *)
    max_attempts : int; (** 0 = unbounded. *)
  }

  type 'req timer = {
    owner : int;  (** The client the request belongs to. *)
    req : 'req;
    mutable deadline : int;
    mutable attempt : int;
  }

  type 'req t

  val create : unit -> 'req t
  val arm : 'req t -> ticket:int -> owner:int -> deadline:int -> 'req -> unit
  val find : 'req t -> int -> 'req timer option
  val cancel : 'req t -> int -> unit
  val cancel_list : 'req t -> int list -> unit
  val owned : 'req t -> owner:int -> int list

  val within_budget : config -> 'req timer -> bool
  (** The attempts budget ([max_attempts]) is not exhausted. *)

  val pending : 'req t -> live:(int -> 'req timer -> bool) -> int list
  (** Armed tickets passing the caller's liveness test (typically:
      budget not exhausted, no response yet, owner still running),
      sorted. *)

  val due : 'req t -> now:int -> live:(int -> 'req timer -> bool) -> int list
  (** {!pending} restricted to expired deadlines. *)

  val backoff : ?cap:int -> ?jitter:int -> config -> 'req timer -> now:int -> unit
  (** Count an attempt and push the deadline out exponentially
      ([rto * 2^attempt], capped).  [cap] bounds the exponential term
      (floored at [rto]); [jitter] is extra milliseconds/steps the
      caller drew from its own seeded randomness — desynchronising
      retry storms is the caller's policy, determinism is this
      module's. *)
end
