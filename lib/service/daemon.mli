(** The networked register server: [select] event loops hosting sharded
    {!Server_core} instances behind Unix-domain stream sockets.

    Each hosted server [i] listens on [sockdir/server-i.sock] and speaks
    the {!Wire} protocol: [Hello]/[Welcome] on connect, [Request] →
    [Response] and [Req_batch] → [Resp_batch] (each request's
    {!Sb_sim.Rmwdesc.t} is applied through the same interpreter the
    simulator uses), and [Stats_query] → [Stats] as a live counters
    endpoint with per-shard aggregation.

    {2 Shards}

    A server hosts [shards] keyed {!Server_core} instances; a request's
    key is routed by the consistent-hash ring ({!Sb_kv.Shard}), so every
    process — daemon, SDK, tests — computes the same key → shard mapping
    without coordination.  Each shard has its own state file, its own
    incarnation, and its own at-most-once table.  A batch frame is
    applied in list order and each touched shard is persisted once per
    frame — the batch is what amortises the two [fsync]s per mutation
    that bound the single-request path.

    By default every server's shards share one event loop (the
    historical single-threaded daemon).  [?domains] spreads the hosted
    servers across that many event-loop domains ({!Sb_parallel.Pool}),
    partitioned by server id with stable affinity — object state is
    never shared across domains, so there is no locking on the request
    path.  (This box's 1-CPU perf trap applies: multicore speedup gates
    arm only at ≥2 cores.)

    With [statedir], object state and incarnation are persisted
    (atomically, temp + rename) after every mutating RMW; a daemon
    restarted over a persisted state recovers into a fresh incarnation,
    exactly like [Recover_server] in the simulated transport.  Killing
    the process loses the at-most-once table — the fault model of the
    paper's crash-recoverable base objects.

    {2 Mixed-version clusters}

    [?wire_version] pins a daemon to an older wire version: its frames
    (and persisted state) are encoded at that version and its reader
    rejects newer frames, which makes the binary behave exactly like an
    old build — the mixed-version scenarios restart daemons one
    schema-version apart under live load.  Connect-time, the [Hello]
    handshake carries the peer's schema version + hash (v2+); a peer
    claiming the daemon's own schema version with a different layout
    hash gets a typed [Wire.Reject] and a clean close instead of decode
    crashes mid-stream. *)

val sockpath : sockdir:string -> int -> string
(** [sockdir/server-<i>.sock] — where server [i] listens. *)

val statefile : statedir:string -> int -> string
(** [statedir/server-<i>.state] — where server [i] persists. *)

val statefile_shard : statedir:string -> shards:int -> int -> int -> string
(** [statefile_shard ~statedir ~shards i j] — where server [i]'s shard
    [j] persists.  With [shards = 1] this is {!statefile}, so
    pre-sharding state files restart unchanged. *)

val quarantine_path : string -> string
(** Where a corrupt state file is moved before the server recovers
    fresh ([<file>.corrupt]). *)

(** {2 Durable state}

    State files are {!Wire.seal_persisted} containers: the framed
    record plus a 16-byte checksum trailer.  [save_state] writes a
    temp file, [fsync]s it, renames it over the target, and [fsync]s
    the containing directory — a crash at any instant leaves either
    the old state or the new state on disk, never a torn mixture. *)

val save_state :
  ?before_rename:(unit -> unit) -> version:int -> string -> Wire.persisted ->
  unit
(** [before_rename] (default no-op) runs between the temp-file fsync
    and the rename — the hook crash points use to abort inside the
    publication window. *)

type load_result =
  | Loaded of Wire.persisted
  | Absent  (** No state file: a genuinely fresh server. *)
  | Corrupt of string
      (** The file exists but fails the container shape, checksum, or
          decode — truncations, bit-flips, and garbage all land here,
          deterministically and without raising. *)

val load_state : max_version:int -> string -> load_result

(** {2 Crash points}

    Deterministic aborts around the persist path, counted per process
    ([persist:<n>] fires on the [n]th persist, including each hosted
    server's boot-time persist).  The abort is [Unix._exit] — no
    cleanup, indistinguishable from SIGKILL. *)

type crash_stage =
  | Crash_before_write
      (** Before the temp file is touched ([persist-pre:<n>]). *)
  | Crash_before_rename
      (** Between the temp-file fsync and the rename — inside the
          torn-write window ([persist:<n>]): the old state must still
          load on restart. *)
  | Crash_after_rename
      (** After the rename, before the response is sent
          ([persist-post:<n>]): the new state is durable but the
          client retransmits into the fresh incarnation. *)

type crash_point = { cp_stage : crash_stage; cp_persist : int }

val crash_point_of_string : string -> (crash_point, string) result
(** Parses ["persist:<n>"], ["persist-pre:<n>"], ["persist-post:<n>"]. *)

val crash_point_to_string : crash_point -> string

val run :
  ?dedup:bool ->
  ?wire_version:int ->
  ?shards:int ->
  ?domains:int ->
  ?statedir:string ->
  ?stop:(unit -> bool) ->
  ?hooks:Netfault.t ->
  ?crash_at:crash_point ->
  sockdir:string ->
  servers:int list ->
  init_obj:(int -> Sb_storage.Objstate.t) ->
  unit ->
  unit
(** Serve the given server ids until SIGTERM/SIGINT (or [stop] returns
    true, polled between select rounds).  [servers = [0; ...; n-1]]
    hosts a whole cluster in one process; [servers = [i]] is one daemon
    of a multi-process deployment.  [init_obj] supplies the initial
    object state when no persisted state exists (for every key of every
    shard).  [dedup] (default true) arms the per-incarnation
    at-most-once tables.  [shards] (default 1) is the number of keyed
    {!Server_core}s per server; [domains] (default 1) the number of
    event-loop domains the servers are partitioned across (capped at
    the server count; incompatible with [crash_at], whose persist
    counter is process-wide).  [wire_version] (default [Wire.version])
    pins the daemon's protocol version; raises [Invalid_argument]
    outside [Wire.min_version..Wire.version].  [hooks] (default
    {!Netfault.none}) inject socket-layer faults into accepts and
    outbound frames; [crash_at] arms one crash point (requires
    [statedir] to ever fire).  A shard whose state file is corrupt
    quarantines it ({!quarantine_path}) and rejoins fresh.  Sockets are
    unlinked on the way out. *)
