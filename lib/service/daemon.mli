(** The networked register server: a single-threaded [select] event
    loop hosting one or more {!Server_core} instances behind Unix-domain
    stream sockets.

    Each hosted server [i] listens on [sockdir/server-i.sock] and speaks
    the {!Wire} protocol: [Hello]/[Welcome] on connect, [Request] →
    [Response] (the request's {!Sb_sim.Rmwdesc.t} is applied through the
    same interpreter the simulator uses), and [Stats_query] → [Stats]
    as a live counters endpoint.

    With [statedir], object state and incarnation are persisted
    (atomically, temp + rename) after every mutating RMW; a daemon
    restarted over a persisted state recovers into a fresh incarnation,
    exactly like [Recover_server] in the simulated transport.  Killing
    the process loses the at-most-once table — the fault model of the
    paper's crash-recoverable base objects.

    {2 Mixed-version clusters}

    [?wire_version] pins a daemon to an older wire version: its frames
    (and persisted state) are encoded at that version and its reader
    rejects newer frames, which makes the binary behave exactly like an
    old build — the mixed-version scenarios restart daemons one
    schema-version apart under live load.  Connect-time, the [Hello]
    handshake carries the peer's schema version + hash (v2+); a peer
    claiming the daemon's own schema version with a different layout
    hash gets a typed [Wire.Reject] and a clean close instead of decode
    crashes mid-stream. *)

val sockpath : sockdir:string -> int -> string
(** [sockdir/server-<i>.sock] — where server [i] listens. *)

val statefile : statedir:string -> int -> string
(** [statedir/server-<i>.state] — where server [i] persists. *)

val quarantine_path : string -> string
(** Where a corrupt state file is moved before the server recovers
    fresh ([<file>.corrupt]). *)

(** {2 Durable state}

    State files are {!Wire.seal_persisted} containers: the framed
    record plus a 16-byte checksum trailer.  [save_state] writes a
    temp file, [fsync]s it, renames it over the target, and [fsync]s
    the containing directory — a crash at any instant leaves either
    the old state or the new state on disk, never a torn mixture. *)

val save_state :
  ?before_rename:(unit -> unit) -> version:int -> string -> Wire.persisted ->
  unit
(** [before_rename] (default no-op) runs between the temp-file fsync
    and the rename — the hook crash points use to abort inside the
    publication window. *)

type load_result =
  | Loaded of Wire.persisted
  | Absent  (** No state file: a genuinely fresh server. *)
  | Corrupt of string
      (** The file exists but fails the container shape, checksum, or
          decode — truncations, bit-flips, and garbage all land here,
          deterministically and without raising. *)

val load_state : max_version:int -> string -> load_result

(** {2 Crash points}

    Deterministic aborts around the persist path, counted per process
    ([persist:<n>] fires on the [n]th persist, including each hosted
    server's boot-time persist).  The abort is [Unix._exit] — no
    cleanup, indistinguishable from SIGKILL. *)

type crash_stage =
  | Crash_before_write
      (** Before the temp file is touched ([persist-pre:<n>]). *)
  | Crash_before_rename
      (** Between the temp-file fsync and the rename — inside the
          torn-write window ([persist:<n>]): the old state must still
          load on restart. *)
  | Crash_after_rename
      (** After the rename, before the response is sent
          ([persist-post:<n>]): the new state is durable but the
          client retransmits into the fresh incarnation. *)

type crash_point = { cp_stage : crash_stage; cp_persist : int }

val crash_point_of_string : string -> (crash_point, string) result
(** Parses ["persist:<n>"], ["persist-pre:<n>"], ["persist-post:<n>"]. *)

val crash_point_to_string : crash_point -> string

val run :
  ?dedup:bool ->
  ?wire_version:int ->
  ?statedir:string ->
  ?stop:(unit -> bool) ->
  ?hooks:Netfault.t ->
  ?crash_at:crash_point ->
  sockdir:string ->
  servers:int list ->
  init_obj:(int -> Sb_storage.Objstate.t) ->
  unit ->
  unit
(** Serve the given server ids until SIGTERM/SIGINT (or [stop] returns
    true, polled between select rounds).  [servers = [0; ...; n-1]]
    hosts a whole cluster in one process; [servers = [i]] is one daemon
    of a multi-process deployment.  [init_obj] supplies the initial
    object state when no persisted state exists.  [dedup] (default
    true) arms the per-incarnation at-most-once table.
    [wire_version] (default [Wire.version]) pins the daemon's protocol
    version; raises [Invalid_argument] outside
    [Wire.min_version..Wire.version].  [hooks] (default
    {!Netfault.none}) inject socket-layer faults into accepts and
    outbound frames; [crash_at] arms one crash point (requires
    [statedir] to ever fire).  A server whose state file is corrupt
    quarantines it ({!quarantine_path}) and rejoins fresh.  Sockets are
    unlinked on the way out. *)
