(** The networked register server: a single-threaded [select] event
    loop hosting one or more {!Server_core} instances behind Unix-domain
    stream sockets.

    Each hosted server [i] listens on [sockdir/server-i.sock] and speaks
    the {!Wire} protocol: [Hello]/[Welcome] on connect, [Request] →
    [Response] (the request's {!Sb_sim.Rmwdesc.t} is applied through the
    same interpreter the simulator uses), and [Stats_query] → [Stats]
    as a live counters endpoint.

    With [statedir], object state and incarnation are persisted
    (atomically, temp + rename) after every mutating RMW; a daemon
    restarted over a persisted state recovers into a fresh incarnation,
    exactly like [Recover_server] in the simulated transport.  Killing
    the process loses the at-most-once table — the fault model of the
    paper's crash-recoverable base objects.

    {2 Mixed-version clusters}

    [?wire_version] pins a daemon to an older wire version: its frames
    (and persisted state) are encoded at that version and its reader
    rejects newer frames, which makes the binary behave exactly like an
    old build — the mixed-version scenarios restart daemons one
    schema-version apart under live load.  Connect-time, the [Hello]
    handshake carries the peer's schema version + hash (v2+); a peer
    claiming the daemon's own schema version with a different layout
    hash gets a typed [Wire.Reject] and a clean close instead of decode
    crashes mid-stream. *)

val sockpath : sockdir:string -> int -> string
(** [sockdir/server-<i>.sock] — where server [i] listens. *)

val statefile : statedir:string -> int -> string
(** [statedir/server-<i>.state] — where server [i] persists. *)

val run :
  ?dedup:bool ->
  ?wire_version:int ->
  ?statedir:string ->
  ?stop:(unit -> bool) ->
  sockdir:string ->
  servers:int list ->
  init_obj:(int -> Sb_storage.Objstate.t) ->
  unit ->
  unit
(** Serve the given server ids until SIGTERM/SIGINT (or [stop] returns
    true, polled between select rounds).  [servers = [0; ...; n-1]]
    hosts a whole cluster in one process; [servers = [i]] is one daemon
    of a multi-process deployment.  [init_obj] supplies the initial
    object state when no persisted state exists.  [dedup] (default
    true) arms the per-incarnation at-most-once table.
    [wire_version] (default [Wire.version]) pins the daemon's protocol
    version; raises [Invalid_argument] outside
    [Wire.min_version..Wire.version].  Sockets are unlinked on the way
    out. *)
