module Objstate = Sb_storage.Objstate
module D = Sb_sim.Rmwdesc

type t = {
  objs : (string, Objstate.t) Hashtbl.t;
  init : Objstate.t;
  mutable incarnation : int;
  dedup : bool;
  applied : (string * int * int, D.resp) Hashtbl.t;
  mutable dedup_hits : int;
  mutable applied_count : int;
  mutable total_bits : int;
  mutable max_bits : int;
  mutable max_key_bits : int;
}

type outcome = {
  resp : D.resp;
  before : Objstate.t;
  after : Objstate.t;
  dedup_hit : bool;
}

let create ?(dedup = true) ?(incarnation = 1) initial =
  let objs = Hashtbl.create 16 in
  Hashtbl.replace objs "" initial;
  let bits = Objstate.bits initial in
  {
    objs;
    init = initial;
    incarnation;
    dedup;
    applied = Hashtbl.create 16;
    dedup_hits = 0;
    applied_count = 0;
    total_bits = bits;
    max_bits = bits;
    max_key_bits = bits;
  }

let load ?dedup ?incarnation ~initial entries =
  let t = create ?dedup ?incarnation initial in
  List.iter
    (fun (key, st) ->
      (match Hashtbl.find_opt t.objs key with
      | Some prev -> t.total_bits <- t.total_bits - Objstate.bits prev
      | None -> ());
      Hashtbl.replace t.objs key st;
      t.total_bits <- t.total_bits + Objstate.bits st)
    entries;
  t.max_bits <- t.total_bits;
  t.max_key_bits <-
    (* sb-lint: allow hashtbl-order — max is order-insensitive *)
    Hashtbl.fold (fun _ st acc -> max acc (Objstate.bits st)) t.objs 0;
  t

let state t = Hashtbl.find t.objs ""
let key_state t key = Hashtbl.find_opt t.objs key
let incarnation t = t.incarnation
let storage_bits t = t.total_bits
let max_bits t = t.max_bits
let max_key_bits t = t.max_key_bits
let dedup_hits t = t.dedup_hits
let applied_count t = t.applied_count
let key_count t = Hashtbl.length t.objs

let entries t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (* sb-lint: allow hashtbl-order — sorted by key before use *)
    (Hashtbl.fold (fun k st acc -> (k, st) :: acc) t.objs [])

let handle_key t ~key ~client ~ticket ~nature rmw =
  let dedupable = t.dedup && nature <> `Readonly in
  match
    if dedupable then Hashtbl.find_opt t.applied (key, client, ticket) else None
  with
  | Some resp ->
    let st = match Hashtbl.find_opt t.objs key with Some s -> s | None -> t.init in
    t.dedup_hits <- t.dedup_hits + 1;
    { resp; before = st; after = st; dedup_hit = true }
  | None ->
    let before, fresh =
      match Hashtbl.find_opt t.objs key with
      | Some st -> (st, false)
      | None -> (t.init, true)
    in
    let after, resp = rmw before in
    Hashtbl.replace t.objs key after;
    t.applied_count <- t.applied_count + 1;
    if dedupable then Hashtbl.replace t.applied (key, client, ticket) resp;
    let bits = Objstate.bits after in
    t.total_bits <-
      t.total_bits + bits - (if fresh then 0 else Objstate.bits before);
    if t.total_bits > t.max_bits then t.max_bits <- t.total_bits;
    if bits > t.max_key_bits then t.max_key_bits <- bits;
    { resp; before; after; dedup_hit = false }

let handle t ~client ~ticket ~nature rmw =
  handle_key t ~key:"" ~client ~ticket ~nature rmw

let crash t = Hashtbl.reset t.applied

let recover t =
  t.incarnation <- t.incarnation + 1;
  t.max_bits <- t.total_bits;
  t.max_key_bits <-
    (* sb-lint: allow hashtbl-order — max is order-insensitive *)
    Hashtbl.fold (fun _ st acc -> max acc (Objstate.bits st)) t.objs 0
