module Objstate = Sb_storage.Objstate
module D = Sb_sim.Rmwdesc

type t = {
  mutable state : Objstate.t;
  mutable incarnation : int;
  dedup : bool;
  applied : (int * int, D.resp) Hashtbl.t;
  mutable dedup_hits : int;
  mutable applied_count : int;
  mutable max_bits : int;
}

type outcome = {
  resp : D.resp;
  before : Objstate.t;
  after : Objstate.t;
  dedup_hit : bool;
}

let create ?(dedup = true) ?(incarnation = 1) initial =
  {
    state = initial;
    incarnation;
    dedup;
    applied = Hashtbl.create 16;
    dedup_hits = 0;
    applied_count = 0;
    max_bits = Objstate.bits initial;
  }

let state t = t.state
let incarnation t = t.incarnation
let storage_bits t = Objstate.bits t.state
let max_bits t = t.max_bits
let dedup_hits t = t.dedup_hits
let applied_count t = t.applied_count

let handle t ~client ~ticket ~nature rmw =
  let dedupable = t.dedup && nature <> `Readonly in
  match
    if dedupable then Hashtbl.find_opt t.applied (client, ticket) else None
  with
  | Some resp ->
    t.dedup_hits <- t.dedup_hits + 1;
    { resp; before = t.state; after = t.state; dedup_hit = true }
  | None ->
    let before = t.state in
    let after, resp = rmw before in
    t.state <- after;
    t.applied_count <- t.applied_count + 1;
    if dedupable then Hashtbl.replace t.applied (client, ticket) resp;
    let bits = Objstate.bits after in
    if bits > t.max_bits then t.max_bits <- bits;
    { resp; before; after; dedup_hit = false }

let crash t = Hashtbl.reset t.applied

let recover t =
  t.incarnation <- t.incarnation + 1;
  t.max_bits <- Objstate.bits t.state
