(** Transport-agnostic server side of the register service.

    A server is a base object with an incarnation counter and a
    per-incarnation at-most-once table, exactly the fault model of
    [Sb_msgnet.Mp_runtime] (which is implemented on top of this module)
    and of the socket daemons in {!Daemon}.  The object state is
    durable across a crash; the at-most-once table is volatile — the
    dedup key is morally [(client, ticket, incarnation)] — so RMWs
    re-applied across a recovery must be idempotent, which the register
    protocols guarantee. *)

type t

type outcome = {
  resp : Sb_sim.Rmwdesc.resp;
  before : Sb_storage.Objstate.t;
  after : Sb_storage.Objstate.t;   (** Equal to [before] on a dedup hit. *)
  dedup_hit : bool;
      (** The at-most-once table answered; the RMW was not re-applied. *)
}

val create :
  ?dedup:bool -> ?incarnation:int -> Sb_storage.Objstate.t -> t
(** A server holding the given initial object state.  [dedup] (default
    true) arms the at-most-once table; [incarnation] defaults to 1 (a
    daemon restarting from a persisted state passes the stored
    incarnation + 1). *)

val handle :
  t ->
  client:int ->
  ticket:int ->
  nature:[ `Mutating | `Readonly | `Merge ] ->
  Sb_sim.Rmwdesc.rmw ->
  outcome
(** Serve one request: either replay the recorded response for this
    [(client, ticket)] (a retransmitted or duplicated request) or apply
    the RMW atomically and record its response.  Read-only RMWs are
    never recorded — they are harmless to re-apply and would bloat the
    table. *)

val crash : t -> unit
(** Lose the volatile state (the at-most-once table); the object state
    survives. *)

val recover : t -> unit
(** Begin a fresh incarnation: bump the counter and restart the
    high-water storage mark.  {!crash} must have been observed first by
    the caller's bookkeeping; this module does not track liveness. *)

val state : t -> Sb_storage.Objstate.t
val incarnation : t -> int
val storage_bits : t -> int
val max_bits : t -> int
val dedup_hits : t -> int
val applied_count : t -> int
