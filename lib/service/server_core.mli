(** Transport-agnostic server side of the register service.

    A server is a {e keyed family} of base objects behind one
    incarnation counter and one per-incarnation at-most-once table —
    the unit the sharded daemon calls a shard.  The pre-sharding
    single-register view is the [""] key: {!create}/{!handle}/{!state}
    keep exactly their historical meaning (and [Sb_msgnet.Mp_runtime]
    is still implemented on them), while {!handle_key} addresses any
    register, lazily materialising it from the initial state on first
    touch.

    Object states are durable across a crash; the at-most-once table is
    volatile — the dedup key is morally [(key, client, ticket,
    incarnation)] — so RMWs re-applied across a recovery must be
    idempotent, which the register protocols guarantee.

    Storage accounting is maintained incrementally: the current total
    over all keys, its high-water mark, and the high-water mark of any
    single key's bits ({!max_key_bits}) — the quantity the per-object
    Theorem 2 ceiling is checked against in a multi-key fleet. *)

type t

type outcome = {
  resp : Sb_sim.Rmwdesc.resp;
  before : Sb_storage.Objstate.t;
  after : Sb_storage.Objstate.t;   (** Equal to [before] on a dedup hit. *)
  dedup_hit : bool;
      (** The at-most-once table answered; the RMW was not re-applied. *)
}

val create :
  ?dedup:bool -> ?incarnation:int -> Sb_storage.Objstate.t -> t
(** A server whose [""] register holds the given initial state, which is
    also the initial state lazily given to every other key on first
    touch.  [dedup] (default true) arms the at-most-once table;
    [incarnation] defaults to 1 (a daemon restarting from a persisted
    state passes the stored incarnation + 1). *)

val load :
  ?dedup:bool ->
  ?incarnation:int ->
  initial:Sb_storage.Objstate.t ->
  (string * Sb_storage.Objstate.t) list ->
  t
(** {!create} then restore the given per-key states (a persisted shard);
    an entry for [""] overrides the initial register.  High-water marks
    restart at the restored footprint, as {!recover} would leave them. *)

val handle :
  t ->
  client:int ->
  ticket:int ->
  nature:[ `Mutating | `Readonly | `Merge ] ->
  Sb_sim.Rmwdesc.rmw ->
  outcome
(** [handle_key ~key:""] — the single-register view. *)

val handle_key :
  t ->
  key:string ->
  client:int ->
  ticket:int ->
  nature:[ `Mutating | `Readonly | `Merge ] ->
  Sb_sim.Rmwdesc.rmw ->
  outcome
(** Serve one keyed request: either replay the recorded response for
    this [(key, client, ticket)] (a retransmitted or duplicated request)
    or apply the RMW atomically to the key's register and record its
    response.  Read-only RMWs are never recorded — they are harmless to
    re-apply and would bloat the table. *)

val crash : t -> unit
(** Lose the volatile state (the at-most-once table); the object states
    survive. *)

val recover : t -> unit
(** Begin a fresh incarnation: bump the counter and restart the
    high-water storage marks.  {!crash} must have been observed first by
    the caller's bookkeeping; this module does not track liveness. *)

val state : t -> Sb_storage.Objstate.t
(** The [""] register's state. *)

val key_state : t -> string -> Sb_storage.Objstate.t option
(** A key's state, [None] if never touched. *)

val entries : t -> (string * Sb_storage.Objstate.t) list
(** Every key's state, sorted by key — what the daemon persists. *)

val incarnation : t -> int
val key_count : t -> int

val storage_bits : t -> int
(** Current total over all keys. *)

val max_bits : t -> int
(** High-water mark of the total. *)

val max_key_bits : t -> int
(** High-water mark of any single key's bits since this incarnation —
    the per-object quantity Theorem 2 bounds. *)

val dedup_hits : t -> int
val applied_count : t -> int
