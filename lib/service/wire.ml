open Sb_storage
module D = Sb_sim.Rmwdesc
module Sch = Sb_schema.Schema

let version = 4
let min_version = 1
let max_frame_bytes = 64 * 1024 * 1024

type nature = [ `Mutating | `Readonly | `Merge ]

type request = {
  rq_key : string;
  rq_client : int;
  rq_ticket : int;
  rq_op : int;
  rq_nature : nature;
  rq_payload : Block.t list;
  rq_desc : D.t;
}

type response = {
  rs_key : string;
  rs_ticket : int;
  rs_op : int;
  rs_server : int;
  rs_incarnation : int;
  rs_dedup : bool;
  rs_resp : D.resp;
}

type shard_stat = {
  ss_shard : int;
  ss_incarnation : int;
  ss_keys : int;
  ss_storage_bits : int;
  ss_max_bits : int;
  ss_max_key_bits : int;
}

type stats = {
  st_server : int;
  st_incarnation : int;
  st_storage_bits : int;
  st_max_bits : int;
  st_dedup_hits : int;
  st_applied : int;
  st_keys : int;
  st_shards : shard_stat list;
}

type peer_schema = { ps_version : int; ps_hash : string }
type reject_code = Unsupported_version | Incompatible_schema

type msg =
  | Hello of { client : int; schema : peer_schema option }
  | Welcome of { server : int; incarnation : int; schema : peer_schema option }
  | Request of request
  | Response of response
  | Stats_query
  | Stats of stats
  | Reject of { rj_code : reject_code; rj_detail : string }
  | Req_batch of request list
  | Resp_batch of response list

exception Decode of string

(* ------------------------------------------------------------------ *)
(* Primitive writers (big-endian) over a Buffer                        *)
(* ------------------------------------------------------------------ *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let w_int b v = Buffer.add_int64_be b (Int64.of_int v)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_bytes b s =
  w_u32 b (Bytes.length s);
  Buffer.add_bytes b s

(* Same framing as [w_bytes] without the intermediate copy — used on
   the per-request key, which rides in every batched frame entry. *)
let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list w b xs =
  w_u32 b (List.length xs);
  List.iter (w b) xs

let w_ts b (ts : Timestamp.t) =
  w_int b ts.num;
  w_int b ts.client

let w_block b (blk : Block.t) =
  w_int b blk.source;
  w_int b blk.index;
  w_bytes b blk.data

let w_chunk b (c : Chunk.t) =
  w_ts b c.ts;
  w_block b c.block

let w_objstate b (st : Objstate.t) =
  w_ts b st.stored_ts;
  w_list w_chunk b st.vp;
  w_list w_chunk b st.vf

let w_nature b = function
  | `Mutating -> w_u8 b 0
  | `Readonly -> w_u8 b 1
  | `Merge -> w_u8 b 2

let w_resp b = function
  | D.Ack -> w_u8 b 0
  | D.Snap st ->
    w_u8 b 1;
    w_objstate b st

let w_desc ~v b (d : D.t) =
  match d with
  | D.Snapshot -> w_u8 b 0
  | D.Abd_store c ->
    w_u8 b 1;
    w_chunk b c
  | D.Lww_store c ->
    w_u8 b 2;
    w_chunk b c
  | D.Safe_update c ->
    w_u8 b 3;
    w_chunk b c
  | D.Adaptive_update { replicate; eviction; trim; k; piece; replica_pieces; ts; stored_ts }
    ->
    w_u8 b 4;
    w_bool b replicate;
    w_u8 b (match eviction with D.Barrier -> 0 | D.Own_ts -> 1);
    (match trim with
    | D.Keep_all -> w_u8 b 0
    | D.Keep_newest delta ->
      w_u8 b 1;
      w_int b delta);
    w_int b k;
    w_block b piece;
    w_list w_block b replica_pieces;
    w_ts b ts;
    w_ts b stored_ts
  | D.Adaptive_gc { piece; ts } ->
    w_u8 b 5;
    w_block b piece;
    w_ts b ts
  | D.Rateless_update { pieces; ts; stored_ts } ->
    w_u8 b 6;
    w_list w_block b pieces;
    w_ts b ts;
    w_ts b stored_ts
  | D.Rateless_gc { pieces; ts } ->
    w_u8 b 7;
    w_list w_block b pieces;
    w_ts b ts
  | D.Rw_write { chunks; ts } ->
    (* A blind overwrite has no pre-v4 encoding; narrowing it would
       change its meaning, so refuse like the keyed-request precedent. *)
    if v < 4 then invalid_arg "Wire: rw-write requires wire version >= 4";
    w_u8 b 8;
    w_list w_chunk b chunks;
    w_ts b ts

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                   *)
(* ------------------------------------------------------------------ *)

type cursor = { buf : bytes; mutable pos : int; stop : int }

let need c n =
  if c.pos + n > c.stop then raise (Decode "truncated frame")

let r_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Decode "negative length");
  v

let r_int c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_bool c = match r_u8 c with 0 -> false | 1 -> true | _ -> raise (Decode "bad bool")

let r_bytes c =
  let n = r_u32 c in
  need c n;
  let s = Bytes.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let r_list r c =
  let n = r_u32 c in
  if n > c.stop - c.pos then raise (Decode "list longer than frame");
  List.init n (fun _ -> r c)

let r_ts c =
  let num = r_int c in
  let client = r_int c in
  Timestamp.make ~num ~client

let r_block c =
  let source = r_int c in
  let index = r_int c in
  let data = r_bytes c in
  (* [Block.v] raises [Invalid_argument] on negative coordinates; an
     adversarial frame must surface as a decode error, not a crash
     (found by the Reader partial-delivery fuzz). *)
  if source < 0 || index < 0 then
    raise (Decode (Printf.sprintf "negative block coordinate %d/%d" source index));
  Block.v ~source ~index data

let r_chunk c =
  let ts = r_ts c in
  let block = r_block c in
  Chunk.v ~ts block

let r_objstate c =
  let stored_ts = r_ts c in
  let vp = r_list r_chunk c in
  let vf = r_list r_chunk c in
  Objstate.with_stored_ts (Objstate.init ~vp ~vf ()) stored_ts

let r_nature c : nature =
  let tag = r_u8 c in
  match tag with
  | 0 -> `Mutating
  | 1 -> `Readonly
  | 2 -> `Merge
  | n -> raise (Decode (Printf.sprintf "bad nature tag %d" n))

let r_resp c =
  let tag = r_u8 c in
  match tag with
  | 0 -> D.Ack
  | 1 -> D.Snap (r_objstate c)
  | n -> raise (Decode (Printf.sprintf "bad resp tag %d" n))

let r_desc ~v c =
  let tag = r_u8 c in
  match tag with
  | 0 -> D.Snapshot
  | 1 -> D.Abd_store (r_chunk c)
  | 2 -> D.Lww_store (r_chunk c)
  | 3 -> D.Safe_update (r_chunk c)
  | 4 ->
    let replicate = r_bool c in
    let eviction =
      let tag = r_u8 c in
      match tag with
      | 0 -> D.Barrier
      | 1 -> D.Own_ts
      | n -> raise (Decode (Printf.sprintf "bad eviction tag %d" n))
    in
    let trim =
      let tag = r_u8 c in
      match tag with
      | 0 -> D.Keep_all
      | 1 -> D.Keep_newest (r_int c)
      | n -> raise (Decode (Printf.sprintf "bad trim tag %d" n))
    in
    let k = r_int c in
    let piece = r_block c in
    let replica_pieces = r_list r_block c in
    let ts = r_ts c in
    let stored_ts = r_ts c in
    D.Adaptive_update
      { replicate; eviction; trim; k; piece; replica_pieces; ts; stored_ts }
  | 5 ->
    let piece = r_block c in
    let ts = r_ts c in
    D.Adaptive_gc { piece; ts }
  | 6 ->
    let pieces = r_list r_block c in
    let ts = r_ts c in
    let stored_ts = r_ts c in
    D.Rateless_update { pieces; ts; stored_ts }
  | 7 ->
    let pieces = r_list r_block c in
    let ts = r_ts c in
    D.Rateless_gc { pieces; ts }
  | 8 when v >= 4 ->
    let chunks = r_list r_chunk c in
    let ts = r_ts c in
    D.Rw_write { chunks; ts }
  | n -> raise (Decode (Printf.sprintf "bad desc tag %d" n))

(* ------------------------------------------------------------------ *)
(* The programmatic schema                                              *)
(*                                                                      *)
(* Defined right beside the writers/readers it describes, and pinned to *)
(* them from three directions: the test suite decodes codec output with *)
(* the schema-driven interpreter and re-encodes it byte-for-byte, the   *)
(* golden schemas/v<N>.json files are diffed against [schema_v] on      *)
(* every runtest, and [spacebounds schema check --all] certifies each   *)
(* committed version pair.                                              *)
(* ------------------------------------------------------------------ *)

let fld f_name f_ty = { Sch.f_name; f_ty }
let earm a_tag a_name a_body = { Sch.a_tag; a_name; a_body }
let unit_ty = Sch.Record []

let ty_ts = Sch.Record [ fld "num" Sch.I64; fld "client" Sch.I64 ]

let ty_block =
  Sch.Record [ fld "source" Sch.I64; fld "index" Sch.I64; fld "data" Sch.Bytes ]

let ty_chunk = Sch.Record [ fld "ts" ty_ts; fld "block" ty_block ]

let ty_objstate =
  Sch.Record
    [
      fld "stored_ts" ty_ts;
      fld "vp" (Sch.List ty_chunk);
      fld "vf" (Sch.List ty_chunk);
    ]

let ty_nature =
  Sch.Enum
    [ earm 0 "Mutating" unit_ty; earm 1 "Readonly" unit_ty; earm 2 "Merge" unit_ty ]

let ty_resp = Sch.Enum [ earm 0 "Ack" unit_ty; earm 1 "Snap" ty_objstate ]

let ty_desc ~v =
  Sch.Enum
    ([
      earm 0 "Snapshot" unit_ty;
      earm 1 "Abd_store" ty_chunk;
      earm 2 "Lww_store" ty_chunk;
      earm 3 "Safe_update" ty_chunk;
      earm 4 "Adaptive_update"
        (Sch.Record
           [
             fld "replicate" Sch.Bool;
             fld "eviction"
               (Sch.Enum [ earm 0 "Barrier" unit_ty; earm 1 "Own_ts" unit_ty ]);
             fld "trim"
               (Sch.Enum
                  [
                    earm 0 "Keep_all" unit_ty;
                    earm 1 "Keep_newest" (Sch.Record [ fld "delta" Sch.I64 ]);
                  ]);
             fld "k" Sch.I64;
             fld "piece" ty_block;
             fld "replica_pieces" (Sch.List ty_block);
             fld "ts" ty_ts;
             fld "stored_ts" ty_ts;
           ]);
      earm 5 "Adaptive_gc" (Sch.Record [ fld "piece" ty_block; fld "ts" ty_ts ]);
      earm 6 "Rateless_update"
        (Sch.Record
           [
             fld "pieces" (Sch.List ty_block);
             fld "ts" ty_ts;
             fld "stored_ts" ty_ts;
           ]);
      earm 7 "Rateless_gc"
        (Sch.Record [ fld "pieces" (Sch.List ty_block); fld "ts" ty_ts ]);
    ]
    @
    (* v4 adds the read/write base-object overwrite — a new enum tag,
       the evolution class the compatibility certifier treats as a
       clean cross-version reject (the v3 batch-tag precedent). *)
    if v >= 4 then
      [
        earm 8 "Rw_write"
          (Sch.Record [ fld "chunks" (Sch.List ty_chunk); fld "ts" ty_ts ]);
      ]
    else [])

let ty_peer_schema = Sch.Record [ fld "version" Sch.U8; fld "hash" Sch.Bytes ]

(* v3 appends trailing fields only (the key tag on requests/responses,
   the per-shard aggregation on stats) and adds new enum tags — both
   evolutions the compatibility certifier classifies as clean cross-
   version rejects, never misinterpretations, exactly like the v2
   handshake-field precedent. *)

let ty_request ~v =
  Sch.Record
    ([
       fld "client" Sch.I64;
       fld "ticket" Sch.I64;
       fld "op" Sch.I64;
       fld "nature" ty_nature;
       fld "payload" (Sch.List ty_block);
       fld "desc" (ty_desc ~v);
     ]
    @ if v >= 3 then [ fld "key" Sch.Bytes ] else [])

let ty_response ~v =
  Sch.Record
    ([
       fld "ticket" Sch.I64;
       fld "op" Sch.I64;
       fld "server" Sch.I64;
       fld "incarnation" Sch.I64;
       fld "dedup" Sch.Bool;
       fld "resp" ty_resp;
     ]
    @ if v >= 3 then [ fld "key" Sch.Bytes ] else [])

let ty_shard_stat =
  Sch.Record
    [
      fld "shard" Sch.I64;
      fld "incarnation" Sch.I64;
      fld "keys" Sch.I64;
      fld "storage_bits" Sch.I64;
      fld "max_bits" Sch.I64;
      fld "max_key_bits" Sch.I64;
    ]

let ty_stats ~v =
  Sch.Record
    ([
       fld "server" Sch.I64;
       fld "incarnation" Sch.I64;
       fld "storage_bits" Sch.I64;
       fld "max_bits" Sch.I64;
       fld "dedup_hits" Sch.I64;
       fld "applied" Sch.I64;
     ]
    @ if v >= 3 then [ fld "keys" Sch.I64; fld "shards" (Sch.List ty_shard_stat) ]
      else [])

let ty_msg ~v =
  let handshake_fields =
    if v >= 2 then [ fld "schema" (Sch.Option ty_peer_schema) ] else []
  in
  Sch.Enum
    ([
       earm 1 "Hello" (Sch.Record (fld "client" Sch.I64 :: handshake_fields));
       earm 2 "Welcome"
         (Sch.Record
            ([ fld "server" Sch.I64; fld "incarnation" Sch.I64 ]
            @ handshake_fields));
       earm 3 "Request" (ty_request ~v);
       earm 4 "Response" (ty_response ~v);
       earm 5 "Stats_query" unit_ty;
       earm 6 "Stats" (ty_stats ~v);
     ]
    @ (if v >= 2 then
         [
           earm 8 "Reject"
             (Sch.Record
                [
                  fld "code"
                    (Sch.Enum
                       [
                         earm 0 "Unsupported_version" unit_ty;
                         earm 1 "Incompatible_schema" unit_ty;
                       ]);
                  fld "detail" Sch.Bytes;
                ]);
         ]
       else [])
    @
    if v >= 3 then
      [
        earm 9 "Req_batch"
          (Sch.Record [ fld "requests" (Sch.List (ty_request ~v)) ]);
        earm 10 "Resp_batch"
          (Sch.Record [ fld "responses" (Sch.List (ty_response ~v)) ]);
      ]
    else [])

let ty_persisted ~v =
  Sch.Enum
    [
      earm 7 "Persisted"
        (Sch.Record
           ([ fld "incarnation" Sch.I64; fld "state" ty_objstate ]
           @
           if v >= 3 then
             [
               fld "keyed"
                 (Sch.List
                    (Sch.Record [ fld "key" Sch.Bytes; fld "state" ty_objstate ]));
             ]
           else []));
    ]

let schema_v ~version:v =
  if v < min_version || v > version then
    invalid_arg (Printf.sprintf "Wire.schema_v: unknown version %d" v);
  {
    Sch.s_version = v;
    s_roots = [ ("msg", ty_msg ~v); ("persisted", ty_persisted ~v) ];
  }

let schema = schema_v ~version
let schema_hash = Sch.hash schema
let schema_hash_hex = Sch.hash_hex schema

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let w_opt w b = function
  | None -> w_u8 b 0
  | Some x ->
    w_u8 b 1;
    w b x

let w_peer_schema b { ps_version; ps_hash } =
  w_u8 b ps_version;
  w_bytes b (Bytes.of_string ps_hash)

let w_request ~v b
    { rq_key; rq_client; rq_ticket; rq_op; rq_nature; rq_payload; rq_desc } =
  (* A keyed request cannot be narrowed to a pre-key frame: the peer
     would silently apply it to its only register.  Multi-key traffic
     therefore requires a v3 peer; "" is the pre-v3 single register. *)
  if v < 3 && rq_key <> "" then
    invalid_arg "Wire: keyed request requires wire version >= 3";
  w_int b rq_client;
  w_int b rq_ticket;
  w_int b rq_op;
  w_nature b rq_nature;
  w_list w_block b rq_payload;
  w_desc ~v b rq_desc;
  if v >= 3 then w_string b rq_key

let w_response ~v b
    { rs_key; rs_ticket; rs_op; rs_server; rs_incarnation; rs_dedup; rs_resp } =
  if v < 3 && rs_key <> "" then
    invalid_arg "Wire: keyed response requires wire version >= 3";
  w_int b rs_ticket;
  w_int b rs_op;
  w_int b rs_server;
  w_int b rs_incarnation;
  w_bool b rs_dedup;
  w_resp b rs_resp;
  if v >= 3 then w_string b rs_key

let w_shard_stat b
    { ss_shard; ss_incarnation; ss_keys; ss_storage_bits; ss_max_bits; ss_max_key_bits }
    =
  w_int b ss_shard;
  w_int b ss_incarnation;
  w_int b ss_keys;
  w_int b ss_storage_bits;
  w_int b ss_max_bits;
  w_int b ss_max_key_bits

let w_stats ~v b
    {
      st_server;
      st_incarnation;
      st_storage_bits;
      st_max_bits;
      st_dedup_hits;
      st_applied;
      st_keys;
      st_shards;
    } =
  w_int b st_server;
  w_int b st_incarnation;
  w_int b st_storage_bits;
  w_int b st_max_bits;
  w_int b st_dedup_hits;
  w_int b st_applied;
  (* The per-shard aggregation is a diagnostic refinement of the summary
     fields above: dropping it for a pre-v3 peer loses detail, never
     meaning. *)
  if v >= 3 then begin
    w_int b st_keys;
    w_list w_shard_stat b st_shards
  end

let w_msg ~v b = function
  | Hello { client; schema } ->
    w_u8 b 1;
    w_int b client;
    (* v1 framing has no handshake field: the schema info is dropped,
       which is exactly what speaking to a v1 peer means. *)
    if v >= 2 then w_opt w_peer_schema b schema
  | Welcome { server; incarnation; schema } ->
    w_u8 b 2;
    w_int b server;
    w_int b incarnation;
    if v >= 2 then w_opt w_peer_schema b schema
  | Request rq ->
    w_u8 b 3;
    w_request ~v b rq
  | Response rs ->
    w_u8 b 4;
    w_response ~v b rs
  | Stats_query -> w_u8 b 5
  | Stats st ->
    w_u8 b 6;
    w_stats ~v b st
  | Reject { rj_code; rj_detail } ->
    if v < 2 then invalid_arg "Wire: Reject requires wire version >= 2";
    w_u8 b 8;
    w_u8 b (match rj_code with Unsupported_version -> 0 | Incompatible_schema -> 1);
    w_bytes b (Bytes.of_string rj_detail)
  | Req_batch reqs ->
    if v < 3 then invalid_arg "Wire: Req_batch requires wire version >= 3";
    w_u8 b 9;
    w_list (w_request ~v) b reqs
  | Resp_batch resps ->
    if v < 3 then invalid_arg "Wire: Resp_batch requires wire version >= 3";
    w_u8 b 10;
    w_list (w_response ~v) b resps

let r_opt r c =
  let presence = r_u8 c in
  match presence with
  | 0 -> None
  | 1 -> Some (r c)
  | n -> raise (Decode (Printf.sprintf "bad presence byte %d" n))

let r_peer_schema c =
  let ps_version = r_u8 c in
  let ps_hash = Bytes.to_string (r_bytes c) in
  { ps_version; ps_hash }

let r_request ~v c =
  let rq_client = r_int c in
  let rq_ticket = r_int c in
  let rq_op = r_int c in
  let rq_nature = r_nature c in
  let rq_payload = r_list r_block c in
  let rq_desc = r_desc ~v c in
  let rq_key = if v >= 3 then Bytes.to_string (r_bytes c) else "" in
  { rq_key; rq_client; rq_ticket; rq_op; rq_nature; rq_payload; rq_desc }

let r_response ~v c =
  let rs_ticket = r_int c in
  let rs_op = r_int c in
  let rs_server = r_int c in
  let rs_incarnation = r_int c in
  let rs_dedup = r_bool c in
  let rs_resp = r_resp c in
  let rs_key = if v >= 3 then Bytes.to_string (r_bytes c) else "" in
  { rs_key; rs_ticket; rs_op; rs_server; rs_incarnation; rs_dedup; rs_resp }

let r_shard_stat c =
  let ss_shard = r_int c in
  let ss_incarnation = r_int c in
  let ss_keys = r_int c in
  let ss_storage_bits = r_int c in
  let ss_max_bits = r_int c in
  let ss_max_key_bits = r_int c in
  { ss_shard; ss_incarnation; ss_keys; ss_storage_bits; ss_max_bits; ss_max_key_bits }

let r_stats ~v c =
  let st_server = r_int c in
  let st_incarnation = r_int c in
  let st_storage_bits = r_int c in
  let st_max_bits = r_int c in
  let st_dedup_hits = r_int c in
  let st_applied = r_int c in
  let st_keys, st_shards =
    if v >= 3 then
      let keys = r_int c in
      (keys, r_list r_shard_stat c)
    else (0, [])
  in
  {
    st_server;
    st_incarnation;
    st_storage_bits;
    st_max_bits;
    st_dedup_hits;
    st_applied;
    st_keys;
    st_shards;
  }

let r_msg ~v c =
  let tag = r_u8 c in
  match tag with
  | 1 ->
    let client = r_int c in
    let schema = if v >= 2 then r_opt r_peer_schema c else None in
    Hello { client; schema }
  | 2 ->
    let server = r_int c in
    let incarnation = r_int c in
    let schema = if v >= 2 then r_opt r_peer_schema c else None in
    Welcome { server; incarnation; schema }
  | 3 -> Request (r_request ~v c)
  | 4 -> Response (r_response ~v c)
  | 5 -> Stats_query
  | 6 -> Stats (r_stats ~v c)
  | 9 when v >= 3 -> Req_batch (r_list (r_request ~v) c)
  | 10 when v >= 3 -> Resp_batch (r_list (r_response ~v) c)
  | 8 when v >= 2 ->
    let code =
      let tag = r_u8 c in
      match tag with
      | 0 -> Unsupported_version
      | 1 -> Incompatible_schema
      | n -> raise (Decode (Printf.sprintf "bad reject code %d" n))
    in
    let detail = Bytes.to_string (r_bytes c) in
    Reject { rj_code = code; rj_detail = detail }
  | n -> raise (Decode (Printf.sprintf "bad message tag %d for version %d" n v))

(* Cheap per-message size estimates.  Batch and persisted frames are
   kilobytes; growing a Buffer there means repeated doublings, each a
   major-heap allocation and full copy at these sizes, which doubles
   encode cost on the loadgen hot path.  Slight overestimates are fine
   — the hint only has to keep growth rare. *)
let hint_fold f acc xs = List.fold_left (fun a x -> a + f x) acc xs
let hint_block (blk : Block.t) = 20 + Bytes.length blk.data
let hint_chunk (c : Chunk.t) = 16 + hint_block c.block

let hint_objstate (st : Objstate.t) =
  hint_fold hint_chunk (hint_fold hint_chunk 24 st.vp) st.vf

let hint_desc (d : D.t) =
  match d with
  | D.Snapshot -> 1
  | D.Abd_store c | D.Lww_store c | D.Safe_update c -> 1 + hint_chunk c
  | D.Adaptive_update { piece; replica_pieces; _ } ->
    60 + hint_fold hint_block (hint_block piece) replica_pieces
  | D.Adaptive_gc { piece; _ } -> 20 + hint_block piece
  | D.Rateless_update { pieces; _ } | D.Rateless_gc { pieces; _ } ->
    40 + hint_fold hint_block 0 pieces
  | D.Rw_write { chunks; _ } -> 24 + hint_fold hint_chunk 0 chunks

let hint_resp = function D.Ack -> 1 | D.Snap st -> 1 + hint_objstate st

let hint_request (r : request) =
  48 + String.length r.rq_key
  + hint_fold hint_block (hint_desc r.rq_desc) r.rq_payload

let hint_response (r : response) =
  48 + String.length r.rs_key + hint_resp r.rs_resp

let hint_msg = function
  | Request r -> 16 + hint_request r
  | Response r -> 16 + hint_response r
  | Req_batch reqs -> hint_fold hint_request 16 reqs
  | Resp_batch resps -> hint_fold hint_response 16 resps
  | Hello _ | Welcome _ | Stats_query | Stats _ | Reject _ -> 512

let frame_body ~hint ~v w_payload payload =
  (* Length prefix written as a placeholder and patched after the body,
     so the whole frame is built in one right-sized buffer with one
     final copy. *)
  let b = Buffer.create (hint payload + 8) in
  w_u32 b 0;
  w_u8 b v;
  w_payload b payload;
  let framed = Buffer.to_bytes b in
  Bytes.set_int32_be framed 0 (Int32.of_int (Bytes.length framed - 4));
  framed

let decode_body ?(max_version = version) r_payload buf =
  let c = { buf; pos = 0; stop = Bytes.length buf } in
  match
    let v = r_u8 c in
    if v < min_version || v > max_version then
      raise
        (Decode
           (Printf.sprintf "unsupported wire version %d (supported %d..%d)" v
              min_version max_version));
    let m = r_payload v c in
    if c.pos <> c.stop then raise (Decode "trailing bytes in frame");
    m
  with
  | m -> Ok m
  | exception Decode e -> Error e
  | exception Invalid_argument e ->
    (* Constructor invariants (e.g. [Block.v] on a negative index) are a
       decode failure for wire data, never a crash. *)
    Error ("invalid value in frame: " ^ e)

let encode_msg ?version:(v = version) m = frame_body ~hint:hint_msg ~v (w_msg ~v) m
let decode_msg ?max_version buf =
  decode_body ?max_version (fun v c -> r_msg ~v c) buf

type persisted = {
  p_incarnation : int;
  p_state : Objstate.t;
  p_keyed : (string * Objstate.t) list;
}

let w_keyed_state b (key, st) =
  w_bytes b (Bytes.of_string key);
  w_objstate b st

let w_persisted ~v b { p_incarnation; p_state; p_keyed } =
  (* Pre-v3 state frames hold exactly one register; dropping keyed
     entries on downgrade would lose durable data, so refuse. *)
  if v < 3 && p_keyed <> [] then
    invalid_arg "Wire: keyed state requires wire version >= 3";
  w_u8 b 7;
  w_int b p_incarnation;
  w_objstate b p_state;
  if v >= 3 then w_list w_keyed_state b p_keyed

let r_keyed_state c =
  let key = Bytes.to_string (r_bytes c) in
  let st = r_objstate c in
  (key, st)

let r_persisted ~v c =
  let tag = r_u8 c in
  match tag with
  | 7 ->
    let p_incarnation = r_int c in
    let p_state = r_objstate c in
    let p_keyed = if v >= 3 then r_list r_keyed_state c else [] in
    { p_incarnation; p_state; p_keyed }
  | n -> raise (Decode (Printf.sprintf "bad state tag %d" n))

let hint_persisted { p_state; p_keyed; _ } =
  hint_fold
    (fun (key, st) -> 8 + String.length key + hint_objstate st)
    (32 + hint_objstate p_state)
    p_keyed

let encode_persisted ?version:(v = version) p =
  frame_body ~hint:hint_persisted ~v (w_persisted ~v) p
let decode_persisted ?max_version buf =
  decode_body ?max_version (fun v c -> r_persisted ~v c) buf

(* The state-file container wraps the persisted frame in a 16-byte
   Hash128 checksum trailer.  The trailer sits outside the
   schema-described frame body on purpose: the golden schemas/v*.json
   files pin the [persisted] layout, and an integrity envelope is a
   property of the file, not of the wire vocabulary. *)

let checksum_bytes = 16

let seal_persisted ?version p =
  let frame = encode_persisted ?version p in
  let h = Sb_util.Hash128.create () in
  Sb_util.Hash128.add_bytes h frame;
  Bytes.cat frame (Bytes.of_string (Sb_util.Hash128.digest h))

let unseal_persisted ?max_version buf =
  let total = Bytes.length buf in
  if total < 4 + checksum_bytes then Error "state file too short"
  else
    let len = Int32.to_int (Bytes.get_int32_be buf 0) in
    if len < 1 || len > max_frame_bytes then
      Error (Printf.sprintf "bad state frame length %d" len)
    else if total <> 4 + len + checksum_bytes then
      Error
        (Printf.sprintf "state file length %d does not match frame %d" total
           len)
    else begin
      let h = Sb_util.Hash128.create () in
      Sb_util.Hash128.add_subbytes h buf 0 (4 + len);
      if
        not
          (String.equal (Sb_util.Hash128.digest h)
             (Bytes.sub_string buf (4 + len) checksum_bytes))
      then Error "state checksum mismatch"
      else decode_persisted ?max_version (Bytes.sub buf 4 len)
    end

(* ------------------------------------------------------------------ *)
(* Incremental frame reader                                            *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type t = { mutable acc : Bytes.t; mutable len : int; max_version : int }

  let create ?(max_version = version) () =
    { acc = Bytes.create 4096; len = 0; max_version }

  let feed t src off n =
    if n > 0 then begin
      let cap = Bytes.length t.acc in
      if t.len + n > cap then begin
        let cap' = max (t.len + n) (2 * cap) in
        let acc' = Bytes.create cap' in
        Bytes.blit t.acc 0 acc' 0 t.len;
        t.acc <- acc'
      end;
      Bytes.blit src off t.acc t.len n;
      t.len <- t.len + n
    end

  let next t =
    if t.len < 4 then Ok None
    else begin
      let frame = Int32.to_int (Bytes.get_int32_be t.acc 0) in
      if frame < 1 || frame > max_frame_bytes then
        Error (Printf.sprintf "bad frame length %d" frame)
      else if t.len < 4 + frame then Ok None
      else begin
        let body = Bytes.sub t.acc 4 frame in
        let rest = t.len - 4 - frame in
        Bytes.blit t.acc (4 + frame) t.acc 0 rest;
        t.len <- rest;
        match decode_msg ~max_version:t.max_version body with
        | Ok m -> Ok (Some m)
        | Error e -> Error e
      end
    end
end

let equal_msg (a : msg) (b : msg) = a = b

let pp_peer_schema ppf = function
  | None -> ()
  | Some { ps_version; ps_hash } ->
    Format.fprintf ppf " schema=v%d/%s" ps_version
      (String.concat ""
         (List.init
            (min 4 (String.length ps_hash))
            (fun i -> Printf.sprintf "%02x" (Char.code ps_hash.[i]))))

let pp_msg ppf = function
  | Hello { client; schema } ->
    Format.fprintf ppf "hello(client=%d%a)" client pp_peer_schema schema
  | Welcome { server; incarnation; schema } ->
    Format.fprintf ppf "welcome(server=%d inc=%d%a)" server incarnation
      pp_peer_schema schema
  | Request r ->
    Format.fprintf ppf "request(key=%S client=%d ticket=%d op=%d %a)" r.rq_key
      r.rq_client r.rq_ticket r.rq_op D.pp r.rq_desc
  | Response r ->
    Format.fprintf ppf
      "response(key=%S ticket=%d op=%d server=%d inc=%d dedup=%b)" r.rs_key
      r.rs_ticket r.rs_op r.rs_server r.rs_incarnation r.rs_dedup
  | Stats_query -> Format.fprintf ppf "stats-query"
  | Stats s ->
    Format.fprintf ppf "stats(server=%d inc=%d bits=%d max=%d keys=%d shards=%d)"
      s.st_server s.st_incarnation s.st_storage_bits s.st_max_bits s.st_keys
      (List.length s.st_shards)
  | Req_batch reqs -> Format.fprintf ppf "req-batch(%d)" (List.length reqs)
  | Resp_batch resps -> Format.fprintf ppf "resp-batch(%d)" (List.length resps)
  | Reject { rj_code; rj_detail } ->
    Format.fprintf ppf "reject(%s: %s)"
      (match rj_code with
      | Unsupported_version -> "unsupported-version"
      | Incompatible_schema -> "incompatible-schema")
      rj_detail
