open Sb_storage
module D = Sb_sim.Rmwdesc

let version = 1
let max_frame_bytes = 64 * 1024 * 1024

type nature = [ `Mutating | `Readonly | `Merge ]

type request = {
  rq_client : int;
  rq_ticket : int;
  rq_op : int;
  rq_nature : nature;
  rq_payload : Block.t list;
  rq_desc : D.t;
}

type response = {
  rs_ticket : int;
  rs_op : int;
  rs_server : int;
  rs_incarnation : int;
  rs_dedup : bool;
  rs_resp : D.resp;
}

type stats = {
  st_server : int;
  st_incarnation : int;
  st_storage_bits : int;
  st_max_bits : int;
  st_dedup_hits : int;
  st_applied : int;
}

type msg =
  | Hello of { client : int }
  | Welcome of { server : int; incarnation : int }
  | Request of request
  | Response of response
  | Stats_query
  | Stats of stats

exception Decode of string

(* ------------------------------------------------------------------ *)
(* Primitive writers (big-endian) over a Buffer                        *)
(* ------------------------------------------------------------------ *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let w_int b v = Buffer.add_int64_be b (Int64.of_int v)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_bytes b s =
  w_u32 b (Bytes.length s);
  Buffer.add_bytes b s

let w_list w b xs =
  w_u32 b (List.length xs);
  List.iter (w b) xs

let w_ts b (ts : Timestamp.t) =
  w_int b ts.num;
  w_int b ts.client

let w_block b (blk : Block.t) =
  w_int b blk.source;
  w_int b blk.index;
  w_bytes b blk.data

let w_chunk b (c : Chunk.t) =
  w_ts b c.ts;
  w_block b c.block

let w_objstate b (st : Objstate.t) =
  w_ts b st.stored_ts;
  w_list w_chunk b st.vp;
  w_list w_chunk b st.vf

let w_nature b = function
  | `Mutating -> w_u8 b 0
  | `Readonly -> w_u8 b 1
  | `Merge -> w_u8 b 2

let w_resp b = function
  | D.Ack -> w_u8 b 0
  | D.Snap st ->
    w_u8 b 1;
    w_objstate b st

let w_desc b (d : D.t) =
  match d with
  | D.Snapshot -> w_u8 b 0
  | D.Abd_store c ->
    w_u8 b 1;
    w_chunk b c
  | D.Lww_store c ->
    w_u8 b 2;
    w_chunk b c
  | D.Safe_update c ->
    w_u8 b 3;
    w_chunk b c
  | D.Adaptive_update { replicate; eviction; trim; k; piece; replica_pieces; ts; stored_ts }
    ->
    w_u8 b 4;
    w_bool b replicate;
    w_u8 b (match eviction with D.Barrier -> 0 | D.Own_ts -> 1);
    (match trim with
    | D.Keep_all -> w_u8 b 0
    | D.Keep_newest delta ->
      w_u8 b 1;
      w_int b delta);
    w_int b k;
    w_block b piece;
    w_list w_block b replica_pieces;
    w_ts b ts;
    w_ts b stored_ts
  | D.Adaptive_gc { piece; ts } ->
    w_u8 b 5;
    w_block b piece;
    w_ts b ts
  | D.Rateless_update { pieces; ts; stored_ts } ->
    w_u8 b 6;
    w_list w_block b pieces;
    w_ts b ts;
    w_ts b stored_ts
  | D.Rateless_gc { pieces; ts } ->
    w_u8 b 7;
    w_list w_block b pieces;
    w_ts b ts

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                   *)
(* ------------------------------------------------------------------ *)

type cursor = { buf : bytes; mutable pos : int; stop : int }

let need c n =
  if c.pos + n > c.stop then raise (Decode "truncated frame")

let r_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Decode "negative length");
  v

let r_int c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_bool c = match r_u8 c with 0 -> false | 1 -> true | _ -> raise (Decode "bad bool")

let r_bytes c =
  let n = r_u32 c in
  need c n;
  let s = Bytes.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let r_list r c =
  let n = r_u32 c in
  if n > c.stop - c.pos then raise (Decode "list longer than frame");
  List.init n (fun _ -> r c)

let r_ts c =
  let num = r_int c in
  let client = r_int c in
  Timestamp.make ~num ~client

let r_block c =
  let source = r_int c in
  let index = r_int c in
  let data = r_bytes c in
  Block.v ~source ~index data

let r_chunk c =
  let ts = r_ts c in
  let block = r_block c in
  Chunk.v ~ts block

let r_objstate c =
  let stored_ts = r_ts c in
  let vp = r_list r_chunk c in
  let vf = r_list r_chunk c in
  Objstate.with_stored_ts (Objstate.init ~vp ~vf ()) stored_ts

let r_nature c : nature =
  match r_u8 c with
  | 0 -> `Mutating
  | 1 -> `Readonly
  | 2 -> `Merge
  | n -> raise (Decode (Printf.sprintf "bad nature tag %d" n))

let r_resp c =
  match r_u8 c with
  | 0 -> D.Ack
  | 1 -> D.Snap (r_objstate c)
  | n -> raise (Decode (Printf.sprintf "bad resp tag %d" n))

let r_desc c =
  match r_u8 c with
  | 0 -> D.Snapshot
  | 1 -> D.Abd_store (r_chunk c)
  | 2 -> D.Lww_store (r_chunk c)
  | 3 -> D.Safe_update (r_chunk c)
  | 4 ->
    let replicate = r_bool c in
    let eviction =
      match r_u8 c with
      | 0 -> D.Barrier
      | 1 -> D.Own_ts
      | n -> raise (Decode (Printf.sprintf "bad eviction tag %d" n))
    in
    let trim =
      match r_u8 c with
      | 0 -> D.Keep_all
      | 1 -> D.Keep_newest (r_int c)
      | n -> raise (Decode (Printf.sprintf "bad trim tag %d" n))
    in
    let k = r_int c in
    let piece = r_block c in
    let replica_pieces = r_list r_block c in
    let ts = r_ts c in
    let stored_ts = r_ts c in
    D.Adaptive_update
      { replicate; eviction; trim; k; piece; replica_pieces; ts; stored_ts }
  | 5 ->
    let piece = r_block c in
    let ts = r_ts c in
    D.Adaptive_gc { piece; ts }
  | 6 ->
    let pieces = r_list r_block c in
    let ts = r_ts c in
    let stored_ts = r_ts c in
    D.Rateless_update { pieces; ts; stored_ts }
  | 7 ->
    let pieces = r_list r_block c in
    let ts = r_ts c in
    D.Rateless_gc { pieces; ts }
  | n -> raise (Decode (Printf.sprintf "bad desc tag %d" n))

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let w_msg b = function
  | Hello { client } ->
    w_u8 b 1;
    w_int b client
  | Welcome { server; incarnation } ->
    w_u8 b 2;
    w_int b server;
    w_int b incarnation
  | Request { rq_client; rq_ticket; rq_op; rq_nature; rq_payload; rq_desc } ->
    w_u8 b 3;
    w_int b rq_client;
    w_int b rq_ticket;
    w_int b rq_op;
    w_nature b rq_nature;
    w_list w_block b rq_payload;
    w_desc b rq_desc
  | Response { rs_ticket; rs_op; rs_server; rs_incarnation; rs_dedup; rs_resp } ->
    w_u8 b 4;
    w_int b rs_ticket;
    w_int b rs_op;
    w_int b rs_server;
    w_int b rs_incarnation;
    w_bool b rs_dedup;
    w_resp b rs_resp
  | Stats_query -> w_u8 b 5
  | Stats { st_server; st_incarnation; st_storage_bits; st_max_bits; st_dedup_hits; st_applied }
    ->
    w_u8 b 6;
    w_int b st_server;
    w_int b st_incarnation;
    w_int b st_storage_bits;
    w_int b st_max_bits;
    w_int b st_dedup_hits;
    w_int b st_applied

let r_msg c =
  match r_u8 c with
  | 1 -> Hello { client = r_int c }
  | 2 ->
    let server = r_int c in
    let incarnation = r_int c in
    Welcome { server; incarnation }
  | 3 ->
    let rq_client = r_int c in
    let rq_ticket = r_int c in
    let rq_op = r_int c in
    let rq_nature = r_nature c in
    let rq_payload = r_list r_block c in
    let rq_desc = r_desc c in
    Request { rq_client; rq_ticket; rq_op; rq_nature; rq_payload; rq_desc }
  | 4 ->
    let rs_ticket = r_int c in
    let rs_op = r_int c in
    let rs_server = r_int c in
    let rs_incarnation = r_int c in
    let rs_dedup = r_bool c in
    let rs_resp = r_resp c in
    Response { rs_ticket; rs_op; rs_server; rs_incarnation; rs_dedup; rs_resp }
  | 5 -> Stats_query
  | 6 ->
    let st_server = r_int c in
    let st_incarnation = r_int c in
    let st_storage_bits = r_int c in
    let st_max_bits = r_int c in
    let st_dedup_hits = r_int c in
    let st_applied = r_int c in
    Stats { st_server; st_incarnation; st_storage_bits; st_max_bits; st_dedup_hits; st_applied }
  | n -> raise (Decode (Printf.sprintf "bad message tag %d" n))

let frame_body w_payload v =
  let body = Buffer.create 256 in
  w_u8 body version;
  w_payload body v;
  let framed = Buffer.create (Buffer.length body + 4) in
  w_u32 framed (Buffer.length body);
  Buffer.add_buffer framed body;
  Buffer.to_bytes framed

let decode_body r_payload buf =
  let c = { buf; pos = 0; stop = Bytes.length buf } in
  match
    let v = r_u8 c in
    if v <> version then
      raise (Decode (Printf.sprintf "wire version %d, expected %d" v version));
    let m = r_payload c in
    if c.pos <> c.stop then raise (Decode "trailing bytes in frame");
    m
  with
  | m -> Ok m
  | exception Decode e -> Error e

let encode_msg m = frame_body w_msg m
let decode_msg buf = decode_body r_msg buf

type persisted = { p_incarnation : int; p_state : Objstate.t }

let w_persisted b { p_incarnation; p_state } =
  w_u8 b 7;
  w_int b p_incarnation;
  w_objstate b p_state

let r_persisted c =
  match r_u8 c with
  | 7 ->
    let p_incarnation = r_int c in
    let p_state = r_objstate c in
    { p_incarnation; p_state }
  | n -> raise (Decode (Printf.sprintf "bad state tag %d" n))

let encode_persisted p = frame_body w_persisted p
let decode_persisted buf = decode_body r_persisted buf

(* ------------------------------------------------------------------ *)
(* Incremental frame reader                                            *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type t = { mutable acc : Bytes.t; mutable len : int }

  let create () = { acc = Bytes.create 4096; len = 0 }

  let feed t src off n =
    if n > 0 then begin
      let cap = Bytes.length t.acc in
      if t.len + n > cap then begin
        let cap' = max (t.len + n) (2 * cap) in
        let acc' = Bytes.create cap' in
        Bytes.blit t.acc 0 acc' 0 t.len;
        t.acc <- acc'
      end;
      Bytes.blit src off t.acc t.len n;
      t.len <- t.len + n
    end

  let next t =
    if t.len < 4 then Ok None
    else begin
      let frame = Int32.to_int (Bytes.get_int32_be t.acc 0) in
      if frame < 1 || frame > max_frame_bytes then
        Error (Printf.sprintf "bad frame length %d" frame)
      else if t.len < 4 + frame then Ok None
      else begin
        let body = Bytes.sub t.acc 4 frame in
        let rest = t.len - 4 - frame in
        Bytes.blit t.acc (4 + frame) t.acc 0 rest;
        t.len <- rest;
        match decode_msg body with Ok m -> Ok (Some m) | Error e -> Error e
      end
    end
end

let equal_msg (a : msg) (b : msg) = a = b

let pp_msg ppf = function
  | Hello { client } -> Format.fprintf ppf "hello(client=%d)" client
  | Welcome { server; incarnation } ->
    Format.fprintf ppf "welcome(server=%d inc=%d)" server incarnation
  | Request r ->
    Format.fprintf ppf "request(client=%d ticket=%d op=%d %a)" r.rq_client
      r.rq_ticket r.rq_op D.pp r.rq_desc
  | Response r ->
    Format.fprintf ppf "response(ticket=%d op=%d server=%d inc=%d dedup=%b)"
      r.rs_ticket r.rs_op r.rs_server r.rs_incarnation r.rs_dedup
  | Stats_query -> Format.fprintf ppf "stats-query"
  | Stats s ->
    Format.fprintf ppf "stats(server=%d inc=%d bits=%d max=%d)" s.st_server
      s.st_incarnation s.st_storage_bits s.st_max_bits
