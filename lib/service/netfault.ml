(* Socket-layer fault hooks.  The daemon and the SDK consult one of
   these at every connection attempt and for every outbound frame; the
   seeded policies that fill them in live in Sb_faults.Live, keeping
   the service itself free of any fault-plan vocabulary. *)

type action =
  | Pass
  | Drop
  | Emit of (int * bytes) list
  | Emit_close of (int * bytes) list

type t = {
  nf_accept : server:int -> bool;
  nf_connect : server:int -> bool;
  nf_frame : server:int -> bytes -> action;
}

let none =
  {
    nf_accept = (fun ~server:_ -> true);
    nf_connect = (fun ~server:_ -> true);
    nf_frame = (fun ~server:_ _ -> Pass);
  }

(* Frame layout: u32 length, then u8 version, u8 tag.  A policy that
   wants to spare the handshake peeks at the tag; a frame too short to
   carry one is left to the peer's reader to reject. *)
let frame_tag frame =
  if Bytes.length frame < 6 then None else Some (Bytes.get_uint8 frame 5)

let handshake_tags = [ 1; 2; 8 ]

let is_handshake frame =
  match frame_tag frame with
  | Some tag -> List.mem tag handshake_tags
  | None -> false
