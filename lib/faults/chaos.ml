module MP = Sb_msgnet.Mp_runtime
module Trace = Sb_sim.Trace
module Monitor = Sb_sanitize.Monitor
module Table = Sb_util.Table

type spec = {
  sp_name : string;
  sp_make : unit -> Sb_sim.Runtime.algorithm;
  sp_n : int;
  sp_f : int;
  sp_k : int;
  sp_value_bytes : int;
  sp_reg_avail : bool;
  sp_check : Sb_spec.History.t -> Sb_spec.Regularity.verdict;
  sp_base_model : Sb_baseobj.Model.t;
  sp_byz : Sb_adversary.Byz.behaviour option;
      (** Lying behaviour for [Byzantine] base models; the policy is
          seeded per run ([Sb_adversary.Byz.policy]) with the model's
          budget, so liar selection varies across the seed sweep. *)
  sp_floor : (int * int) option;
      (** [(copies, d_bits)] arms the sanitizer's replication-floor
          monitor — [(f+1, D)] for the emulations whose sibling bounds
          prove that floor. *)
  sp_workload : (value_bytes:int -> Sb_sim.Trace.op_kind list array) option;
      (** Override the default two-writers-one-reader workload (the
          single-writer emulations need SWMR drives). *)
}

type config = {
  seeds : int;
  base_seed : int;
  drops : float list;
  duplicate : float;
  delay : float;
  crash_recovery : bool;
  sanitize : bool;
  rto : int;
  max_steps : int;
  watchdog_budget : int;
}

let default_config =
  { seeds = 10;
    base_seed = 1;
    drops = [ 0.0; 0.1; 0.3 ];
    duplicate = 0.1;
    delay = 0.05;
    crash_recovery = true;
    sanitize = true;
    rto = 50;
    max_steps = 100_000;
    watchdog_budget = 25_000;
  }

let quick_config =
  { default_config with seeds = 3; drops = [ 0.0; 0.2 ]; max_steps = 50_000 }

type run_result = {
  r_seed : int;
  r_steps : int;
  r_quiescent : bool;
  r_ops : int;
  r_completed : int;
  r_stuck : Inject.stuck list;
  r_verdict : Sb_spec.Regularity.verdict;
  r_violations : Monitor.violation list;
  r_stats : MP.net_stats;
  r_requests : int;
  r_max_server_bits : int;
  r_max_channel_bits : int;
  r_max_combined_bits : int;
  r_accounting_ok : bool;
}

let run_ok r =
  r.r_quiescent
  && r.r_completed = r.r_ops
  && r.r_stuck = []
  && (match r.r_verdict with Sb_spec.Regularity.Ok -> true | _ -> false)
  && r.r_violations = []
  && r.r_accounting_ok

(* Three clients: two writers racing and a reader sampling twice.  Small
   enough that a campaign cell is cheap, rich enough that regularity has
   something to say under faults. *)
let workload ~value_bytes =
  let v i = Sb_util.Values.distinct ~value_bytes i in
  [| [ Trace.Write (v 1); Trace.Read ];
     [ Trace.Write (v 2) ];
     [ Trace.Read; Trace.Read ];
  |]

(* One writer, two readers: the drive for the single-writer emulations
   (rw-safe, byz-regular), where blind overwrites or masking quorums are
   only claimed correct under SWMR. *)
let swmr_workload ~value_bytes =
  let v i = Sb_util.Values.distinct ~value_bytes i in
  [| [ Trace.Write (v 1); Trace.Write (v 2) ];
     [ Trace.Read; Trace.Read ];
     [ Trace.Read ];
  |]

let plan_for cfg ~drop =
  let p =
    Plan.lossy ~duplicate:cfg.duplicate ~delay:cfg.delay drop
  in
  if cfg.crash_recovery then
    Plan.crash_recovery ~server:0 ~crash_at:(cfg.rto) ~recover_at:(3 * cfg.rto) p
  else p

let run_one cfg (sp : spec) ~drop ~seed =
  let plan = plan_for cfg ~drop in
  Plan.validate ~n:sp.sp_n ~f:sp.sp_f plan;
  let byz =
    Option.map
      (fun behaviour ->
        Sb_adversary.Byz.policy ~seed ~n:sp.sp_n
          ~budget:(Sb_baseobj.Model.budget sp.sp_base_model)
          behaviour)
      sp.sp_byz
  in
  let wl =
    match sp.sp_workload with
    | Some mk -> mk ~value_bytes:sp.sp_value_bytes
    | None -> workload ~value_bytes:sp.sp_value_bytes
  in
  let w =
    MP.create ~seed ~retransmit:{ MP.rto = cfg.rto; max_attempts = 0 }
      ~base_model:sp.sp_base_model ?byz ~algorithm:(sp.sp_make ()) ~n:sp.sp_n
      ~f:sp.sp_f ~workload:wl ()
  in
  let monitor =
    if cfg.sanitize then
      Some
        (Monitor.attach_mp
           (Monitor.config ~mode:Monitor.Collect ~reg_avail:sp.sp_reg_avail
              ?floor:sp.sp_floor
              ?byz:
                (Option.map
                   (fun (p : Sb_baseobj.Model.byz_policy) ->
                     p.Sb_baseobj.Model.bp_compromised)
                   byz)
              ~k:sp.sp_k ())
           w)
    else None
  in
  let outcome = MP.run ~max_steps:cfg.max_steps w (Inject.policy ~seed plan) in
  let ops = Trace.operations (MP.trace w) in
  let completed =
    List.length (List.filter (fun (_, _, _, ret, _) -> ret <> None) ops)
  in
  let initial = Bytes.make sp.sp_value_bytes '\000' in
  let verdict = sp.sp_check (Sb_spec.History.of_trace ~initial (MP.trace w)) in
  let violations =
    match monitor with Some m -> Monitor.violations m | None -> []
  in
  (* Channel accounting must survive duplication and retransmission: the
     live counter has to agree with a recount of what is in flight, and
     the combined high-water mark can never fall below the decodability
     floor D (the initial value alone pins k blocks of D/k bits). *)
  let channel_recount =
    List.fold_left (fun acc (m : MP.message_info) -> acc + m.MP.m_bits) 0
      (MP.in_flight w)
  in
  let d_bits = 8 * sp.sp_value_bytes in
  let accounting_ok =
    channel_recount = MP.storage_bits_channels w
    && MP.max_bits_combined w >= MP.max_bits_servers w
    && MP.max_bits_combined w >= d_bits
  in
  { r_seed = seed;
    r_steps = outcome.MP.steps;
    r_quiescent = outcome.MP.quiescent;
    r_ops = List.length ops;
    r_completed = completed;
    r_stuck = Inject.watchdog ~budget:cfg.watchdog_budget w;
    r_verdict = verdict;
    r_violations = violations;
    r_stats = MP.net_stats w;
    r_requests = MP.requests_sent w;
    r_max_server_bits = MP.max_bits_servers w;
    r_max_channel_bits = MP.max_bits_channels w;
    r_max_combined_bits = MP.max_bits_combined w;
    r_accounting_ok = accounting_ok;
  }

type cell = {
  cl_algo : string;
  cl_drop : float;
  cl_runs : run_result list;
  cl_ok : bool;
}

let cell cfg sp ~drop =
  let runs =
    List.init cfg.seeds (fun i ->
        run_one cfg sp ~drop ~seed:(cfg.base_seed + i))
  in
  { cl_algo = sp.sp_name;
    cl_drop = drop;
    cl_runs = runs;
    cl_ok = List.for_all run_ok runs;
  }

let campaign cfg specs =
  List.concat_map
    (fun sp -> List.map (fun drop -> cell cfg sp ~drop) cfg.drops)
    specs

let all_ok cells = List.for_all (fun c -> c.cl_ok) cells

let mean f runs =
  match runs with
  | [] -> 0.0
  | _ ->
    float_of_int (List.fold_left (fun acc r -> acc + f r) 0 runs)
    /. float_of_int (List.length runs)

let max_over f runs = List.fold_left (fun acc r -> max acc (f r)) 0 runs

(* The graceful-degradation report: one row per (algorithm, drop rate),
   mean cost metrics over the seed sweep plus channel-inclusive storage
   high-water marks.  Retransmissions and duplicates inflate the channel
   columns — visibly, rather than escaping the accounting. *)
let report cells =
  let t =
    Table.create ~title:"chaos: graceful degradation under message faults"
      [ ("algorithm", Table.Left);
        ("drop", Table.Right);
        ("runs", Table.Right);
        ("done", Table.Right);
        ("steps", Table.Right);
        ("req/op", Table.Right);
        ("retrans", Table.Right);
        ("dup", Table.Right);
        ("fenced", Table.Right);
        ("dedup", Table.Right);
        ("stuck", Table.Right);
        ("viol", Table.Right);
        ("srvB", Table.Right);
        ("chanB", Table.Right);
        ("totB", Table.Right);
        ("verdict", Table.Left);
      ]
  in
  List.iter
    (fun c ->
      let runs = c.cl_runs in
      let n_runs = List.length runs in
      let completed = List.filter run_ok runs in
      let verdicts_ok =
        List.for_all
          (fun r ->
            match r.r_verdict with Sb_spec.Regularity.Ok -> true | _ -> false)
          runs
      in
      Table.add_row t
        [ c.cl_algo;
          Printf.sprintf "%.2f" c.cl_drop;
          string_of_int n_runs;
          string_of_int (List.length completed);
          Printf.sprintf "%.0f" (mean (fun r -> r.r_steps) runs);
          Printf.sprintf "%.1f"
            (mean (fun r -> r.r_requests) runs
            /. Float.max 1.0 (mean (fun r -> r.r_ops) runs));
          Printf.sprintf "%.1f" (mean (fun r -> r.r_stats.MP.retransmissions) runs);
          Printf.sprintf "%.1f" (mean (fun r -> r.r_stats.MP.duplicated) runs);
          Printf.sprintf "%.1f" (mean (fun r -> r.r_stats.MP.fenced) runs);
          Printf.sprintf "%.1f" (mean (fun r -> r.r_stats.MP.dedup_hits) runs);
          string_of_int
            (List.fold_left (fun acc r -> acc + List.length r.r_stuck) 0 runs);
          string_of_int
            (List.fold_left
               (fun acc r -> acc + List.length r.r_violations)
               0 runs);
          string_of_int (max_over (fun r -> r.r_max_server_bits) runs);
          string_of_int (max_over (fun r -> r.r_max_channel_bits) runs);
          string_of_int (max_over (fun r -> r.r_max_combined_bits) runs);
          (if verdicts_ok then "ok" else "VIOLATION");
        ])
    cells;
  t

let explain_failures ppf cells =
  List.iter
    (fun c ->
      if not c.cl_ok then
        List.iter
          (fun r ->
            if not (run_ok r) then begin
              Format.fprintf ppf "%s drop=%.2f seed=%d:@." c.cl_algo c.cl_drop
                r.r_seed;
              if not r.r_quiescent then
                Format.fprintf ppf "  not quiescent after %d steps@." r.r_steps;
              if r.r_completed < r.r_ops then
                Format.fprintf ppf "  %d/%d operations completed@." r.r_completed
                  r.r_ops;
              List.iter
                (fun s -> Format.fprintf ppf "  stuck: %a@." Inject.pp_stuck s)
                r.r_stuck;
              (match r.r_verdict with
              | Sb_spec.Regularity.Ok -> ()
              | Sb_spec.Regularity.Violation _ ->
                Format.fprintf ppf "  regularity violation@.");
              List.iter
                (fun v ->
                  Format.fprintf ppf "  sanitizer: %a@." Monitor.pp_violation v)
                r.r_violations;
              if not r.r_accounting_ok then
                Format.fprintf ppf "  channel-inclusive accounting mismatch@."
            end)
          c.cl_runs)
    cells
