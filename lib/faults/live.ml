module Daemon = Sb_service.Daemon
module Netfault = Sb_service.Netfault
module Sdk = Sb_service.Sdk
module Wire = Sb_service.Wire
module Prng = Sb_util.Prng
module J = Sb_util.Jsonx

(* ------------------------------------------------------------------ *)
(* Socket-layer interpretation of a Plan                               *)
(* ------------------------------------------------------------------ *)

(* Split a frame into 2..4 chunks at seeded cut points.  Chunks carry
   small staggered delays; the peer's incremental reader must reassemble
   the frame from adversarial partial writes. *)
let fragment_frame prng frame =
  let len = Bytes.length frame in
  if len < 2 then [ (0, frame) ]
  else begin
    let pieces = min (2 + Prng.int prng 3) len in
    let cuts = Array.init (pieces - 1) (fun _ -> 1 + Prng.int prng (len - 1)) in
    Array.sort compare cuts;
    let bounds = Array.to_list cuts @ [ len ] in
    let rec chunks start acc = function
      | [] -> List.rev acc
      | b :: rest ->
        if b <= start then chunks start acc rest
        else chunks b (Bytes.sub frame start (b - start) :: acc) rest
    in
    List.mapi
      (fun i c -> ((if i = 0 then 0 else i + Prng.int prng 3), c))
      (chunks 0 [] bounds)
  end

(* Latest heal time over hold-partitions isolating [server] at [now];
   [now] itself when none. *)
let hold_until (plan : Plan.t) ~now server =
  List.fold_left
    (fun acc (p : Plan.partition) ->
      if
        p.Plan.p_start <= now && now < p.Plan.p_heal
        && List.mem server p.Plan.p_servers
        && p.Plan.p_mode = Plan.Isolate_hold
      then max acc p.Plan.p_heal
      else acc)
    now plan.Plan.partitions

let hooks ?(seed = 1) (plan : Plan.t) : Netfault.t =
  let prng = Prng.create seed in
  let epoch = Unix.gettimeofday () in
  let now_ms () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1000.0) in
  let roll rate =
    rate > 0.0 && Prng.int prng 10_000 < int_of_float (rate *. 10_000.0)
  in
  let gate ~server =
    match Plan.isolation plan ~now:(now_ms ()) server with
    | Some Plan.Isolate_drop -> false
    | Some Plan.Isolate_hold | None -> not (roll (plan.Plan.drop *. 0.5))
  in
  let delay_of () =
    if roll plan.Plan.delay then 1 + Prng.int prng (max 1 plan.Plan.delay_steps)
    else 0
  in
  let nf_frame ~server frame =
    (* Handshake frames always pass: faults exercise the data plane,
       not version negotiation (which has its own mixed-version
       scenarios). *)
    if Netfault.is_handshake frame then Netfault.Pass
    else
      let now = now_ms () in
      match Plan.isolation plan ~now server with
      | Some Plan.Isolate_drop -> Netfault.Drop
      | Some Plan.Isolate_hold ->
        (* Held until the partition heals, like the simulator's
           hold-partitions: the bytes stay in flight, delivery resumes
           after the heal. *)
        Netfault.Emit [ (hold_until plan ~now server - now + 1, frame) ]
      | None ->
        if roll plan.Plan.drop then Netfault.Drop
        else begin
          let copies =
            if roll plan.Plan.duplicate then [ frame; frame ] else [ frame ]
          in
          let segs =
            List.concat_map
              (fun fr ->
                if roll plan.Plan.fragment then
                  let d0 = delay_of () in
                  List.map (fun (d, c) -> (d0 + d, c)) (fragment_frame prng fr)
                else [ (delay_of (), fr) ])
              copies
          in
          (* Occasional slow-close: emit a strict prefix of the frame,
             then close — the peer is left holding a partial frame. *)
          if plan.Plan.fragment > 0.0 && roll (plan.Plan.fragment *. 0.1) then
            match segs with
            | (d, c) :: _ when Bytes.length c > 1 ->
              Netfault.Emit_close [ (d, Bytes.sub c 0 (Bytes.length c - 1)) ]
            | _ -> Netfault.Emit_close []
          else Netfault.Emit segs
        end
  in
  {
    Netfault.nf_accept = (fun ~server -> gate ~server);
    nf_connect = (fun ~server -> gate ~server);
    nf_frame;
  }

(* ------------------------------------------------------------------ *)
(* Disk faults                                                         *)
(* ------------------------------------------------------------------ *)

type disk_fault = Df_none | Df_truncate | Df_bitflip

let disk_fault_name = function
  | Df_none -> "none"
  | Df_truncate -> "truncate"
  | Df_bitflip -> "bitflip"

let corrupt_file ~seed fault file =
  match fault with
  | Df_none -> false
  | Df_truncate | Df_bitflip ->
    if not (Sys.file_exists file) then false
    else begin
      let prng = Prng.create seed in
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let rewrite s =
        let oc = open_out_bin file in
        output_string oc s;
        close_out oc
      in
      (match fault with
       | Df_none -> ()
       | Df_truncate ->
         rewrite (String.sub body 0 (if len <= 1 then 0 else Prng.int prng len))
       | Df_bitflip ->
         if len = 0 then rewrite "\x00"
         else begin
           let b = Bytes.of_string body in
           let i = Prng.int prng len in
           Bytes.set_uint8 b i
             (Bytes.get_uint8 b i lxor (1 lsl Prng.int prng 8));
           rewrite (Bytes.to_string b)
         end);
      true
    end

(* ------------------------------------------------------------------ *)
(* Campaign plumbing                                                   *)
(* ------------------------------------------------------------------ *)

type spec = {
  sp_name : string;
  sp_make : unit -> Sb_sim.Runtime.algorithm;
  sp_n : int;
  sp_f : int;
  sp_k : int;
  sp_value_bytes : int;
  sp_initial : bytes;
  sp_bounds : bool;
  sp_check : Sb_spec.History.t -> Sb_spec.Regularity.verdict;
}

type config = {
  lc_seeds : int;
  lc_base_seed : int;
  lc_writers : int;
  lc_writes_each : int;
  lc_readers : int;
  lc_reads_each : int;
  lc_rto_ms : int;
  lc_think_ms : int;
  lc_deadline_ms : int;
  lc_settle_ms : int;
  lc_tmproot : string;
}

let default_config =
  {
    lc_seeds = 3;
    lc_base_seed = 1;
    lc_writers = 2;
    lc_writes_each = 10;
    lc_readers = 2;
    lc_reads_each = 10;
    lc_rto_ms = 40;
    lc_think_ms = 15;
    lc_deadline_ms = 60_000;
    lc_settle_ms = 300;
    lc_tmproot = Filename.get_temp_dir_name ();
  }

let quick_config =
  { default_config with lc_seeds = 1; lc_writes_each = 6; lc_reads_each = 6 }

type scenario = {
  sc_name : string;
  sc_plan : Plan.t;
  sc_crashes : (int * Daemon.crash_point) list;
  sc_disk : disk_fault;
  sc_green : bool;
}

let scenarios spec =
  let n = spec.sp_n in
  [
    {
      sc_name = "lossy-frag";
      sc_plan =
        Plan.lossy ~duplicate:0.05 ~delay:0.15 ~delay_steps:8 ~fragment:0.25
          0.03;
      sc_crashes = [];
      sc_disk = Df_none;
      sc_green = true;
    };
    {
      sc_name = "partition-heal";
      sc_plan =
        Plan.partition ~name:"iso" ~servers:[ n - 1 ] ~start:250 ~heal:650
          ~mode:Plan.Isolate_hold
          (Plan.lossy ~delay:0.1 ~delay_steps:5 ~fragment:0.1 0.02);
      sc_crashes = [];
      sc_disk = Df_none;
      sc_green = true;
    };
    {
      sc_name = "crash-torn";
      sc_plan = Plan.lossy ~fragment:0.1 0.0;
      sc_crashes =
        List.init (max 1 spec.sp_f) (fun i ->
            ( i,
              {
                Daemon.cp_stage = Daemon.Crash_before_rename;
                cp_persist = 4 + (3 * i);
              } ));
      sc_disk = Df_none;
      sc_green = true;
    };
  ]

(* Disk-corruption scenarios are robustness-mode: a wiped server can
   legitimately break regular-register quorum math, so they gate on
   recovery behaviour (all operations complete, the corrupt file is
   quarantined, every server answers stats, no decode crashes) rather
   than on consistency/bounds. *)
let robustness_scenarios =
  let crash =
    [ (0, { Daemon.cp_stage = Daemon.Crash_after_rename; cp_persist = 4 }) ]
  in
  [
    {
      sc_name = "corrupt-truncate";
      sc_plan = Plan.none;
      sc_crashes = crash;
      sc_disk = Df_truncate;
      sc_green = false;
    };
    {
      sc_name = "corrupt-bitflip";
      sc_plan = Plan.none;
      sc_crashes = crash;
      sc_disk = Df_bitflip;
      sc_green = false;
    };
  ]

type run_result = {
  lr_seed : int;
  lr_ops : int;
  lr_completed : int;
  lr_wall_ms : float;
  lr_weak_ok : bool;
  lr_check_ok : bool;
  lr_peak_bits : int;
  lr_quiescent_bits : int;
  lr_ceiling_bits : int;
  lr_floor_bits : int;
  lr_recoveries : int;
  lr_reconnects : int;
  lr_retransmissions : int;
  lr_op_failures : int;
  lr_timed_out : bool;
  lr_stats_servers : int;
  lr_crash_exits : int;
  lr_quarantined : int;
  lr_ok : bool;
  lr_why : string;
}

type cell = {
  cl_scenario : string;
  cl_algo : string;
  cl_green : bool;
  cl_runs : run_result list;
  cl_ok : bool;
}

(* --- child <-> conductor plumbing: key=value lines over a pipe ----- *)

let parse_kv s =
  List.filter_map
    (fun line ->
      match String.index_opt line '=' with
      | Some i ->
        Some
          ( String.sub line 0 i,
            String.sub line (i + 1) (String.length line - i - 1) )
      | None -> None)
    (String.split_on_char '\n' s)

let kv_int kv key = match List.assoc_opt key kv with
  | Some v -> (try int_of_string v with Failure _ -> 0)
  | None -> 0

let kv_float kv key = match List.assoc_opt key kv with
  | Some v -> (try float_of_string v with Failure _ -> 0.0)
  | None -> 0.0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error _ -> ()

let run_counter = ref 0

(* The workload half of a cell, forked so a cluster meltdown can never
   take the conductor down: runs the SDK under client-side fault hooks,
   judges the trace, samples quiescent storage, and reports key=value
   lines back up the pipe. *)
let sdk_child cfg spec sc ~seed ~sockdir wfd =
  let out = Unix.out_channel_of_descr wfd in
  (try
     let algorithm = spec.sp_make () in
     let workload =
       Sb_experiments.Workloads.writers_and_readers
         ~value_bytes:spec.sp_value_bytes ~writers:cfg.lc_writers
         ~writes_each:cfg.lc_writes_each ~readers:cfg.lc_readers
         ~reads_each:cfg.lc_reads_each
     in
     let sdk_cfg =
       {
         (Sdk.default_config ~n:spec.sp_n ~f:spec.sp_f ~sockdir) with
         Sdk.rto_ms = cfg.lc_rto_ms;
         max_attempts = 0;
         sample_every_ms = 20;
         deadline_ms = cfg.lc_deadline_ms;
         think_ms = cfg.lc_think_ms;
       }
     in
     let h = hooks ~seed:((seed * 131) + 97) sc.sc_plan in
     let r = Sdk.run_workload ~hooks:h ~algorithm ~seed ~workload sdk_cfg in
     let history =
       Sb_spec.History.of_trace ~initial:spec.sp_initial r.Sdk.trace
     in
     let ok_of = function
       | Sb_spec.Regularity.Ok -> 1
       | Sb_spec.Regularity.Violation _ -> 0
     in
     let weak_v = Sb_spec.Regularity.check_weak history in
     let check_v = spec.sp_check history in
     (if (ok_of weak_v = 0 || ok_of check_v = 0)
         && Sys.getenv_opt "SB_LIVE_DEBUG" <> None
      then begin
        Format.eprintf
          "@[<v>live debug (%s/%s seed %d):@,weak: %a@,check: %a@,%a@]@."
          sc.sc_name spec.sp_name seed Sb_spec.Regularity.pp_verdict weak_v
          Sb_spec.Regularity.pp_verdict check_v Sb_spec.History.pp history
      end);
     let sum_max =
       List.fold_left
         (fun a (st : Wire.stats) -> a + st.Wire.st_max_bits)
         0 r.Sdk.final_stats
     in
     (* Clean flush writes before judging the GC floor.  Quorum
        protocols cancel retransmission once a quorum answers, so
        under message loss a server can permanently miss the final GC
        round and legitimately retain a stale block — the paper's
        floor presumes eventual delivery.  Fault-free writes from
        fresh client ids (clear of the main run's dedup keys, and of
        each other's — a repeated cid would replay from the at-most-
        once table instead of applying) stand in for it.  One flush
        usually suffices, but the daemon-side hooks still fault its
        *replies* and can refuse its dials, so a server can miss even
        the flush's GC round; we retry with a new client id until the
        census is at the floor (the paper's "eventually"), bounded.
        The peak above is measured before any of this, on the faulted
        run alone. *)
     let floor_bits = spec.sp_n * 8 * spec.sp_value_bytes / spec.sp_k in
     let flush_cfg =
       {
         sdk_cfg with
         Sdk.deadline_ms = 10_000;
         think_ms = 0;
         sample_every_ms = 0;
       }
     in
     let census () =
       if cfg.lc_settle_ms > 0 then
         Unix.sleepf (float_of_int cfg.lc_settle_ms /. 1000.0);
       let stats =
         Sdk.fetch_stats ~sockdir ~servers:(List.init spec.sp_n Fun.id) ()
       in
       let bits =
         List.fold_left
           (fun a (st : Wire.stats) -> a + st.Wire.st_storage_bits)
           0 stats
       in
       (stats, bits)
     in
     let flush_once attempt =
       let flush_cid = 63 - attempt in
       let flush_workload =
         Array.init (flush_cid + 1) (fun i ->
             if i = flush_cid then
               [
                 Sb_sim.Trace.Write
                   (Sb_util.Values.distinct
                      ~value_bytes:spec.sp_value_bytes
                      (1000 + (seed * 8) + attempt));
               ]
             else [])
       in
       ignore
         (Sdk.run_workload ~algorithm:(spec.sp_make ())
            ~seed:(seed + 7777 + attempt) ~workload:flush_workload flush_cfg);
       census ()
     in
     let quiescent_stats, quiescent =
       let rec settle attempt (stats, bits) =
         if
           attempt >= 5
           || (List.length stats = spec.sp_n && bits <= floor_bits)
         then (stats, bits)
         else settle (attempt + 1) (flush_once attempt)
       in
       settle 1 (flush_once 0)
     in
     (* Ground truth for crash-recovery, free of client-side timing: a
        server restarted over its state file reports incarnation >= 2
        in the final stats round, whether or not the engine happened
        to reconnect to it before the workload drained.  The engine's
        own [recoveries_observed] (bumps it saw in-band) is reported
        alongside. *)
     let recov_stats =
       List.length
         (List.filter
            (fun (st : Wire.stats) -> st.Wire.st_incarnation > 1)
            quiescent_stats)
     in
     Printf.fprintf out
       "ops=%d\ncompleted=%d\nwall_ms=%.1f\nweak_ok=%d\ncheck_ok=%d\n\
        peak=%d\nquiescent=%d\nrecoveries=%d\nrecov_stats=%d\nreconnects=%d\n\
        retrans=%d\nopfail=%d\ntimedout=%d\nstats_servers=%d\n"
       r.Sdk.ops_invoked r.Sdk.ops_completed r.Sdk.wall_ms
       (ok_of weak_v) (ok_of check_v)
       (max r.Sdk.peak_sampled_bits sum_max)
       quiescent r.Sdk.recoveries_observed recov_stats r.Sdk.reconnects
       r.Sdk.retransmissions
       (List.length r.Sdk.failures)
       (if r.Sdk.timed_out then 1 else 0)
       (List.length quiescent_stats);
     flush out
   with e ->
     Printf.fprintf out "child_error=%s\n" (Printexc.to_string e);
     (try flush out with Sys_error _ -> ()));
  Unix._exit 0

let run_one cfg spec sc ~seed =
  Plan.validate ~n:spec.sp_n ~f:spec.sp_f sc.sc_plan;
  incr run_counter;
  let base =
    Filename.concat cfg.lc_tmproot
      (Printf.sprintf "sb-live-%d-%d" (Unix.getpid ()) !run_counter)
  in
  let sockdir = Filename.concat base "sock" in
  let statedir = Filename.concat base "state" in
  (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Unix.mkdir sockdir 0o755;
  Unix.mkdir statedir 0o755;
  let rfd, wfd = Unix.pipe () in
  let fork_daemon ?crash_at sid =
    match Unix.fork () with
    | 0 ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ rfd; wfd ];
      (try
         let algorithm = spec.sp_make () in
         Daemon.run ~statedir ~sockdir ~servers:[ sid ]
           ~init_obj:algorithm.Sb_sim.Runtime.init_obj
           ~hooks:(hooks ~seed:((seed * 131) + sid) sc.sc_plan)
           ?crash_at ();
         Unix._exit 0
       with e ->
         (* An escaping exception is a daemon bug the campaign must
            see, not a quiet exit the quorum can ride out. *)
         Printf.eprintf "daemon: server %d died: %s\n%!" sid
           (Printexc.to_string e);
         Unix._exit 71)
    | pid -> pid
  in
  let daemons =
    Array.init spec.sp_n (fun sid ->
        fork_daemon ?crash_at:(List.assoc_opt sid sc.sc_crashes) sid)
  in
  let sdk_pid =
    match Unix.fork () with
    | 0 ->
      (try Unix.close rfd with Unix.Unix_error _ -> ());
      sdk_child cfg spec sc ~seed ~sockdir wfd
    | pid ->
      Unix.close wfd;
      pid
  in
  let crash_exits = ref 0 in
  let unexpected_deaths = ref [] in
  let poll_daemons () =
    Array.iteri
      (fun sid pid ->
        if pid > 0 then
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, Unix.WEXITED 70 ->
            (* A crash point fired.  Optionally corrupt the state it
               left behind, then restart it (without the crash point)
               a beat later. *)
            incr crash_exits;
            (match sc.sc_disk with
             | Df_none -> ()
             | df ->
               ignore
                 (corrupt_file ~seed:(seed + (sid * 17)) df
                    (Daemon.statefile ~statedir sid)));
            Unix.sleepf 0.15;
            daemons.(sid) <- fork_daemon sid
          | _, st ->
            (* Not a crash point: the daemon died of its own accord —
               a hardening failure, reported loudly, never papered
               over by the quorum riding it out. *)
            let why =
              match st with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED sg -> Printf.sprintf "signal %d" sg
              | Unix.WSTOPPED sg -> Printf.sprintf "stopped %d" sg
            in
            unexpected_deaths :=
              Printf.sprintf "server %d died (%s)" sid why
              :: !unexpected_deaths;
            daemons.(sid) <- 0
          | exception Unix.Unix_error _ -> daemons.(sid) <- 0)
      daemons
  in
  let buf = Buffer.create 512 in
  let eof = ref false in
  while not !eof do
    (match Unix.select [ rfd ] [] [] 0.05 with
     | [ _ ], _, _ ->
       let b = Bytes.create 4096 in
       let nread = Unix.read rfd b 0 (Bytes.length b) in
       if nread = 0 then eof := true else Buffer.add_subbytes buf b 0 nread
     | _ -> ()
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    poll_daemons ()
  done;
  Unix.close rfd;
  reap sdk_pid;
  let quarantined =
    List.length
      (List.filter
         (fun sid ->
           Sys.file_exists
             (Daemon.quarantine_path (Daemon.statefile ~statedir sid)))
         (List.init spec.sp_n Fun.id))
  in
  Array.iter
    (fun pid ->
      if pid > 0 then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap pid
      end)
    daemons;
  rm_rf base;
  let kv = parse_kv (Buffer.contents buf) in
  let m = (2 * spec.sp_f) + spec.sp_k in
  let d_bits = 8 * spec.sp_value_bytes in
  let ceiling_bits =
    min ((cfg.lc_writers + 1) * m) (m * m) * d_bits / spec.sp_k
  in
  let floor_bits = m * d_bits / spec.sp_k in
  let ops = kv_int kv "ops" in
  let completed = kv_int kv "completed" in
  let weak_ok = kv_int kv "weak_ok" = 1 in
  let check_ok = kv_int kv "check_ok" = 1 in
  let peak = kv_int kv "peak" in
  let quiescent = kv_int kv "quiescent" in
  let recoveries = kv_int kv "recoveries" in
  let recov_stats = kv_int kv "recov_stats" in
  let timed_out = kv_int kv "timedout" = 1 in
  let stats_servers = kv_int kv "stats_servers" in
  let expected_crashes = List.length sc.sc_crashes in
  let problems = ref [] in
  let need cond msg = if not cond then problems := msg :: !problems in
  (match List.assoc_opt "child_error" kv with
   | Some e -> need false ("workload child crashed: " ^ e)
   | None -> ());
  need (not timed_out) "deadline expired before completion";
  need (ops > 0 && completed = ops)
    (Printf.sprintf "%d/%d operations completed" completed ops);
  need (stats_servers = spec.sp_n)
    (Printf.sprintf "only %d/%d servers answered the final stats round"
       stats_servers spec.sp_n);
  need (!crash_exits >= expected_crashes)
    (Printf.sprintf "%d/%d crash points fired" !crash_exits expected_crashes);
  need (!unexpected_deaths = [])
    (String.concat ", " (List.rev !unexpected_deaths));
  if sc.sc_green then begin
    (* Judged from the stats round (incarnation >= 2), not from the
       engine's in-band observations: a crash near the end of the run
       can complete the remaining quorums without ever reconnecting to
       the crashed server, so the client-side count is timing-dependent
       while the servers' own incarnations are not. *)
    if expected_crashes > 0 then
      need (recov_stats >= expected_crashes)
        (Printf.sprintf "%d crashed servers rejoined bumped, wanted >= %d"
           recov_stats expected_crashes);
    need weak_ok "weak regularity violated";
    need check_ok "register-level consistency violated";
    if spec.sp_bounds then begin
      need (peak <= ceiling_bits)
        (Printf.sprintf "peak %d bits above Theorem 2 ceiling %d" peak
           ceiling_bits);
      need (quiescent <= floor_bits)
        (Printf.sprintf "quiescent %d bits above GC floor %d" quiescent
           floor_bits)
    end
  end
  else
    need (quarantined >= 1) "corrupt state file was not quarantined";
  {
    lr_seed = seed;
    lr_ops = ops;
    lr_completed = completed;
    lr_wall_ms = kv_float kv "wall_ms";
    lr_weak_ok = weak_ok;
    lr_check_ok = check_ok;
    lr_peak_bits = peak;
    lr_quiescent_bits = quiescent;
    lr_ceiling_bits = ceiling_bits;
    lr_floor_bits = floor_bits;
    lr_recoveries = max recoveries recov_stats;
    lr_reconnects = kv_int kv "reconnects";
    lr_retransmissions = kv_int kv "retrans";
    lr_op_failures = kv_int kv "opfail";
    lr_timed_out = timed_out;
    lr_stats_servers = stats_servers;
    lr_crash_exits = !crash_exits;
    lr_quarantined = quarantined;
    lr_ok = !problems = [];
    lr_why = String.concat "; " (List.rev !problems);
  }

let run_cell cfg spec sc =
  let seeds =
    if sc.sc_green then List.init cfg.lc_seeds (fun i -> cfg.lc_base_seed + i)
    else [ cfg.lc_base_seed ]
  in
  let runs = List.map (fun seed -> run_one cfg spec sc ~seed) seeds in
  {
    cl_scenario = sc.sc_name;
    cl_algo = spec.sp_name;
    cl_green = sc.sc_green;
    cl_runs = runs;
    cl_ok = List.for_all (fun r -> r.lr_ok) runs;
  }

let campaign cfg specs =
  List.concat_map
    (fun spec ->
      List.map (run_cell cfg spec) (scenarios spec @ robustness_scenarios))
    specs

let all_ok cells = List.for_all (fun c -> c.cl_ok) cells

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report cells =
  let t =
    Sb_util.Table.create ~title:"live chaos campaign"
      [
        ("scenario", Sb_util.Table.Left);
        ("algo", Sb_util.Table.Left);
        ("runs", Sb_util.Table.Right);
        ("ok", Sb_util.Table.Left);
        ("ops", Sb_util.Table.Right);
        ("retrans", Sb_util.Table.Right);
        ("reconn", Sb_util.Table.Right);
        ("crashes", Sb_util.Table.Right);
        ("recov", Sb_util.Table.Right);
        ("quarant", Sb_util.Table.Right);
        ("peak/ceil", Sb_util.Table.Right);
        ("quiesc/floor", Sb_util.Table.Right);
      ]
  in
  List.iter
    (fun c ->
      let sum f = List.fold_left (fun a r -> a + f r) 0 c.cl_runs in
      let mx f = List.fold_left (fun a r -> max a (f r)) 0 c.cl_runs in
      Sb_util.Table.add_row t
        [
          c.cl_scenario;
          c.cl_algo;
          string_of_int (List.length c.cl_runs);
          (if c.cl_ok then "yes" else "NO");
          Printf.sprintf "%d/%d"
            (sum (fun r -> r.lr_completed))
            (sum (fun r -> r.lr_ops));
          string_of_int (sum (fun r -> r.lr_retransmissions));
          string_of_int (sum (fun r -> r.lr_reconnects));
          string_of_int (sum (fun r -> r.lr_crash_exits));
          string_of_int (sum (fun r -> r.lr_recoveries));
          string_of_int (sum (fun r -> r.lr_quarantined));
          Printf.sprintf "%d/%d"
            (mx (fun r -> r.lr_peak_bits))
            (mx (fun r -> r.lr_ceiling_bits));
          Printf.sprintf "%d/%d"
            (mx (fun r -> r.lr_quiescent_bits))
            (mx (fun r -> r.lr_floor_bits));
        ])
    cells;
  t

let explain_failures fmt cells =
  List.iter
    (fun c ->
      if not c.cl_ok then
        List.iter
          (fun r ->
            if not r.lr_ok then
              Format.fprintf fmt "FAIL %s/%s seed %d: %s@." c.cl_scenario
                c.cl_algo r.lr_seed r.lr_why)
          c.cl_runs)
    cells

let write_report file cells =
  let cell_json c =
    J.obj
      [
        ("scenario", J.str c.cl_scenario);
        ("algo", J.str c.cl_algo);
        ("mode", J.str (if c.cl_green then "green" else "robustness"));
        ("runs", J.int (List.length c.cl_runs));
        ("ok", J.bool c.cl_ok);
        ( "crash_exits",
          J.int (List.fold_left (fun a r -> a + r.lr_crash_exits) 0 c.cl_runs)
        );
        ( "recoveries",
          J.int (List.fold_left (fun a r -> a + r.lr_recoveries) 0 c.cl_runs)
        );
        ( "quarantined",
          J.int (List.fold_left (fun a r -> a + r.lr_quarantined) 0 c.cl_runs)
        );
        ( "op_failures",
          J.int (List.fold_left (fun a r -> a + r.lr_op_failures) 0 c.cl_runs)
        );
        ( "peak_bits",
          J.int (List.fold_left (fun a r -> max a r.lr_peak_bits) 0 c.cl_runs)
        );
        ( "quiescent_bits",
          J.int
            (List.fold_left (fun a r -> max a r.lr_quiescent_bits) 0 c.cl_runs)
        );
      ]
  in
  J.write file
    [
      ("suite", J.str "chaos-live");
      ("cells", J.int (List.length cells));
      ( "runs",
        J.int
          (List.fold_left (fun a c -> a + List.length c.cl_runs) 0 cells) );
      ("ok", J.bool (all_ok cells));
      ("cell_results", J.arr (List.map cell_json cells));
    ]
