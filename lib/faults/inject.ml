module MP = Sb_msgnet.Mp_runtime
module Trace = Sb_sim.Trace
module Prng = Sb_util.Prng

(* A message's fate is rolled once, the first time the policy sees it,
   and remembered by msg_id: re-rolling at every poll would compound the
   probabilities with the (schedule-dependent) number of polls. *)
type fate =
  | Deliver
  | Lose
  | Clone          (* duplicate once, then deliver normally *)
  | Held of int    (* extra network delay until this time *)

let dead_servers w =
  let dead = ref 0 in
  for i = 0 to MP.n_servers w - 1 do
    if not (MP.server_alive w i) then incr dead
  done;
  !dead

let policy ?(seed = 0) (plan : Plan.t) : MP.policy =
  let rng = Prng.create (0x5b_fa17 lxor (seed * 0x9e3779b9)) in
  let crashes = ref (List.sort compare plan.Plan.crashes) in
  let recoveries = ref (List.sort compare plan.Plan.recoveries) in
  let fates : (int, fate) Hashtbl.t = Hashtbl.create 64 in
  let fate_of now (m : MP.message_info) =
    match Hashtbl.find_opt fates m.MP.msg_id with
    | Some f -> f
    | None ->
      let r = Prng.float rng 1.0 in
      let f =
        if r < plan.Plan.drop then Lose
        else if r < plan.drop +. plan.duplicate then Clone
        else if r < plan.drop +. plan.duplicate +. plan.delay then
          Held (now + 1 + Prng.int rng (max 1 plan.delay_steps))
        else Deliver
      in
      Hashtbl.replace fates m.MP.msg_id f;
      f
  in
  fun w ->
    let now = MP.time w in
    (* Scheduled recoveries first (they free the crash budget), then
       scheduled crashes, gated on the budget the runtime enforces. *)
    let due_recover =
      List.find_opt
        (fun (tm, s) -> tm <= now && not (MP.server_alive w s))
        !recoveries
    in
    match due_recover with
    | Some ((_, s) as e) ->
      recoveries := List.filter (fun e' -> e' <> e) !recoveries;
      MP.Recover_server s
    | None -> (
      let due_crash =
        List.find_opt
          (fun (tm, s) -> tm <= now && MP.server_alive w s)
          !crashes
      in
      match due_crash with
      | Some ((_, s) as e) when dead_servers w < MP.f_tolerance w ->
        crashes := List.filter (fun e' -> e' <> e) !crashes;
        MP.Crash_server s
      | _ -> (
        (* Requests addressed to a dead server: the transport refuses the
           connection, so the message is lost (retransmission timers, not
           the channel, carry the op across the outage). *)
        let refused =
          List.find_opt
            (fun (m : MP.message_info) ->
              m.MP.kind = MP.Request && not (MP.server_alive w m.MP.m_server))
            (MP.in_flight w)
        in
        match refused with
        | Some m -> MP.Drop_msg m.MP.msg_id
        | None -> (
          (* Classify deliverable messages: partition isolation first,
             then the per-message fate roll. *)
          let eligible = ref [] and losses = ref [] and clones = ref [] in
          let waiting_on_net = ref false in
          List.iter
            (fun (m : MP.message_info) ->
              match Plan.isolation plan ~now m.MP.m_server with
              | Some Plan.Isolate_drop -> losses := m :: !losses
              | Some Plan.Isolate_hold -> waiting_on_net := true
              | None -> (
                match fate_of now m with
                | Lose -> losses := m :: !losses
                | Clone -> clones := m :: !clones
                | Held release when now < release -> waiting_on_net := true
                | Held _ | Deliver -> eligible := m :: !eligible))
            (MP.deliverable w);
          match !losses with
          | m :: _ -> MP.Drop_msg m.MP.msg_id
          | [] -> (
            match !clones with
            | m :: _ ->
              (* The clone gets its own msg_id and its own fate roll;
                 the original now delivers normally. *)
              Hashtbl.replace fates m.MP.msg_id Deliver;
              MP.Duplicate_msg m.MP.msg_id
            | [] ->
              let choices =
                List.map (fun (m : MP.message_info) -> MP.Deliver_msg m.MP.msg_id)
                  !eligible
                @ List.map (fun c -> MP.Step c) (MP.steppable w)
                @ List.map (fun t -> MP.Retransmit t) (MP.due_retransmits w)
              in
              if choices <> [] then Prng.pick_list rng choices
              else begin
                (* Nothing enabled right now; advance time if anything is
                   waiting on it — a held message, a pending
                   retransmission deadline, or a scheduled recovery of a
                   currently-dead server. *)
                let waiting =
                  !waiting_on_net
                  || MP.pending_retransmits w <> []
                  || List.exists
                       (fun (_, s) -> not (MP.server_alive w s))
                       !recoveries
                in
                if waiting then MP.Tick else MP.Halt
              end))))

type stuck = {
  wd_op : int;
  wd_kind : Trace.op_kind;
  wd_invoked : int;
  wd_age : int;
}

let watchdog ~budget w =
  if budget <= 0 then invalid_arg "Sb_faults.Inject.watchdog: budget must be > 0";
  let now = MP.time w in
  List.filter_map
    (fun (op, kind, invoked, returned, _) ->
      match returned with
      | Some _ -> None
      | None when now - invoked > budget ->
        Some { wd_op = op; wd_kind = kind; wd_invoked = invoked;
               wd_age = now - invoked }
      | None -> None)
    (Trace.operations (MP.trace w))

let pp_stuck ppf s =
  Format.fprintf ppf "op %d (%s) invoked at t=%d still pending after %d steps"
    s.wd_op
    (match s.wd_kind with Trace.Read -> "read" | Trace.Write _ -> "write")
    s.wd_invoked s.wd_age
