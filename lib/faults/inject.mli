(** Seeded interpreter turning a {!Plan} into scheduling decisions.

    The policy drives {!Sb_msgnet.Mp_runtime} and layers faults over a
    fair random schedule: each message's fate (deliver / lose /
    duplicate / delay) is rolled once from the seed the first time the
    policy sees it; partitions isolate their servers until the heal
    time; crashes and recoveries fire at their scheduled times, with
    recoveries taking priority (they free the [f] crash budget the
    runtime enforces).  Requests addressed to a dead server are dropped
    — connection refused — so liveness across an outage comes from the
    client's retransmission timers, not from the channel.  When nothing
    is enabled but something is waiting on time (a held message, a
    retransmission deadline, a scheduled recovery), the policy ticks;
    otherwise it halts.

    Identical [(plan, seed)] pairs make identical decision sequences. *)

val policy : ?seed:int -> Plan.t -> Sb_msgnet.Mp_runtime.policy
(** Fresh mutable policy state per call: do not share one policy between
    worlds. *)

(** {1 Liveness watchdog} *)

type stuck = {
  wd_op : int;  (** Operation id, as in {!Sb_sim.Trace.operations}. *)
  wd_kind : Sb_sim.Trace.op_kind;
  wd_invoked : int;
  wd_age : int;  (** Steps since invocation, at observation time. *)
}

val watchdog : budget:int -> Sb_msgnet.Mp_runtime.world -> stuck list
(** Operations invoked more than [budget] steps ago and still not
    returned — the fairness-bounded deadline of the chaos campaigns.
    Raises [Invalid_argument] if [budget <= 0]. *)

val pp_stuck : Format.formatter -> stuck -> unit
