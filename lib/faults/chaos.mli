(** Chaos campaigns: fault-rate sweeps with sanitizers and accounting on.

    A campaign runs every algorithm spec against every drop rate, over a
    seed sweep, under a {!Plan} combining message loss, duplication,
    delay, and (optionally) one server crash + recovery — with
    retransmission armed, the [Sb_sanitize] monitors attached, and the
    {!Sb_spec.Regularity} checker judging the resulting history.  A run
    passes only if it goes quiescent with every operation completed,
    nothing flagged by the liveness watchdog, a clean consistency
    verdict, zero sanitizer violations, and channel-inclusive storage
    accounting that survives duplication and retransmission (the live
    channel-bit counter matches a recount of what is in flight, and the
    combined high-water mark never falls below the decodability floor
    [D] — faults inflate the measured bits, they never hide them). *)

type spec = {
  sp_name : string;
  sp_make : unit -> Sb_sim.Runtime.algorithm;
      (** Fresh algorithm per run (encoders may be stateful). *)
  sp_n : int;
  sp_f : int;
  sp_k : int;
  sp_value_bytes : int;
  sp_reg_avail : bool;  (** Arm the availability monitor (regular regs). *)
  sp_check : Sb_spec.History.t -> Sb_spec.Regularity.verdict;
      (** The consistency level this register promises. *)
  sp_base_model : Sb_baseobj.Model.t;
      (** Base-object model the runtime enforces ([Rmw] for the
          historical specs). *)
  sp_byz : Sb_adversary.Byz.behaviour option;
      (** Lying behaviour under a [Byzantine] base model; each run
          builds [Sb_adversary.Byz.policy] from its scheduler seed and
          the model's budget, so liar selection varies across the seed
          sweep and every run stays replayable from its seed. *)
  sp_floor : (int * int) option;
      (** [(copies, d_bits)]: arm the sanitizer's replication-floor
          monitor, e.g. [(f+1, D)] for the read/write and Byzantine
          emulations whose sibling bounds prove that floor. *)
  sp_workload : (value_bytes:int -> Sb_sim.Trace.op_kind list array) option;
      (** Workload override; [None] is the default
          two-writers-one-reader drive. *)
}

val swmr_workload : value_bytes:int -> Sb_sim.Trace.op_kind list array
(** One writer (two writes), two readers — the drive for single-writer
    emulations. *)

type config = {
  seeds : int;            (** Runs per (algorithm, drop) cell. *)
  base_seed : int;
  drops : float list;     (** The fault-rate sweep. *)
  duplicate : float;
  delay : float;
  crash_recovery : bool;  (** Crash server 0 mid-run and recover it. *)
  sanitize : bool;
  rto : int;              (** Retransmission timeout (backoff doubles it). *)
  max_steps : int;
  watchdog_budget : int;  (** Fairness-bounded liveness deadline. *)
}

val default_config : config
(** 10 seeds x drops {0, 0.1, 0.3}, duplication 0.1, delay 0.05, one
    crash/recovery, sanitizers on. *)

val quick_config : config
(** A CI-sized campaign: 3 seeds x drops {0, 0.2}. *)

type run_result = {
  r_seed : int;
  r_steps : int;
  r_quiescent : bool;
  r_ops : int;
  r_completed : int;
  r_stuck : Inject.stuck list;
  r_verdict : Sb_spec.Regularity.verdict;
  r_violations : Sb_sanitize.Monitor.violation list;
  r_stats : Sb_msgnet.Mp_runtime.net_stats;
  r_requests : int;
  r_max_server_bits : int;
  r_max_channel_bits : int;
  r_max_combined_bits : int;
  r_accounting_ok : bool;
}

val run_ok : run_result -> bool

val run_one : config -> spec -> drop:float -> seed:int -> run_result

type cell = {
  cl_algo : string;
  cl_drop : float;
  cl_runs : run_result list;
  cl_ok : bool;
}

val cell : config -> spec -> drop:float -> cell

val campaign : config -> spec list -> cell list
(** Every spec x every drop rate, in order. *)

val all_ok : cell list -> bool

val report : cell list -> Sb_util.Table.t
(** Graceful-degradation table: per (algorithm, drop) mean steps,
    requests per op, retransmissions, duplicates, fenced deliveries,
    dedup hits, stuck ops, sanitizer violations, and storage high-water
    marks (server / channel / combined bits). *)

val explain_failures : Format.formatter -> cell list -> unit
(** Prints a diagnosis line for every failing run in failing cells. *)
