(** Chaos for the live stack: the seeded fault plane for real daemon
    processes.

    The same declarative {!Plan} that drives the simulator's fault
    injection is interpreted here at the socket layer ({!hooks}) and at
    the disk layer ({!disk_fault}), and {!campaign} sweeps fault plans
    x seeds x registers over forked clusters of {!Sb_service.Daemon}
    processes with an {!Sb_service.Sdk} load generator attached.

    Two gating modes:

    - {e green} scenarios (loss/duplication/delay/fragmentation,
      partitions with heals, deterministic crash points around the
      persist path) must stay fully green: every operation completes,
      regularity holds, and — for space-adaptive registers — the
      Theorem 2 ceiling and GC floor hold.  Crash points are sound
      here because the daemon persists before responding, so an abort
      at any persist stage loses no acknowledged data.
    - {e robustness} scenarios additionally corrupt a crashed server's
      state file (truncation, bit-flips).  A wiped server can
      legitimately perturb quorum-intersection math, so these gate on
      recovery behaviour instead: the corruption is detected and
      quarantined, the server rejoins fresh, all operations still
      complete, and nothing ever crashes on or serves garbage. *)

val hooks : ?seed:int -> Plan.t -> Sb_service.Netfault.t
(** Interpret a plan's message-fault rates and partitions as
    socket-layer faults, with all randomness drawn from one PRNG
    seeded by [seed] (default 1).  Partition windows are wall-clock
    milliseconds from the moment [hooks] is called.  Frames are
    dropped, duplicated, delayed, fragmented into staggered partial
    writes, or slow-closed mid-frame; dials/accepts are refused while
    a drop-partition isolates the server (and occasionally under
    loss).  Handshake frames always pass.  Each process builds its own
    hooks from the shared plan. *)

type disk_fault = Df_none | Df_truncate | Df_bitflip

val disk_fault_name : disk_fault -> string

val corrupt_file : seed:int -> disk_fault -> string -> bool
(** Seeded in-place corruption of a state file: truncate to a random
    prefix, or flip one random bit.  Returns false (and does nothing)
    for [Df_none] or a missing file. *)

type spec = {
  sp_name : string;
  sp_make : unit -> Sb_sim.Runtime.algorithm;
      (** Fresh algorithm per process (encoders may be stateful). *)
  sp_n : int;
  sp_f : int;
  sp_k : int;
  sp_value_bytes : int;
  sp_initial : bytes;  (** The register's initial value, for histories. *)
  sp_bounds : bool;    (** Assert the Theorem 2 ceiling and GC floor. *)
  sp_check : Sb_spec.History.t -> Sb_spec.Regularity.verdict;
}

type config = {
  lc_seeds : int;        (** Seeds per green scenario cell. *)
  lc_base_seed : int;
  lc_writers : int;      (** The paper's concurrency level [c]. *)
  lc_writes_each : int;
  lc_readers : int;
  lc_reads_each : int;
  lc_rto_ms : int;
  lc_think_ms : int;
  lc_deadline_ms : int;
  lc_settle_ms : int;    (** Quiescence settle before the floor check. *)
  lc_tmproot : string;   (** Where per-run sock/state dirs are created. *)
}

val default_config : config
(** 3 seeds, 2 writers x 10 + 2 readers x 10, rto 40 ms, think 15 ms. *)

val quick_config : config
(** CI-sized: 1 seed, 6 ops per client. *)

type scenario = {
  sc_name : string;
  sc_plan : Plan.t;  (** Partition times are wall-clock milliseconds. *)
  sc_crashes : (int * Sb_service.Daemon.crash_point) list;
      (** Per-server crash points armed on the initial daemon processes;
          a crashed daemon is restarted (without the crash point) after
          a short delay. *)
  sc_disk : disk_fault;
      (** Applied to a crashed server's state file before its restart. *)
  sc_green : bool;  (** Gate on consistency + bounds (see module doc). *)
}

val scenarios : spec -> scenario list
(** The green sweep: "lossy-frag" (loss + duplication + delay +
    fragmentation), "partition-heal" (one server held off and healed
    mid-run under light loss), "crash-torn" ([f] crash points inside
    the torn-write window). *)

val robustness_scenarios : scenario list
(** "corrupt-truncate" and "corrupt-bitflip": crash server 0 just after
    a persist, corrupt the state it left, and require quarantine +
    fresh recovery. *)

type run_result = {
  lr_seed : int;
  lr_ops : int;
  lr_completed : int;
  lr_wall_ms : float;
  lr_weak_ok : bool;
  lr_check_ok : bool;
  lr_peak_bits : int;
  lr_quiescent_bits : int;
  lr_ceiling_bits : int;
  lr_floor_bits : int;
  lr_recoveries : int;
      (** Crash-recoveries evidenced either in-band (incarnation bumps
          the engine saw) or by the final stats round (servers
          reporting incarnation >= 2); the green gate judges the
          latter, which is free of client-side reconnect timing. *)
  lr_reconnects : int;
  lr_retransmissions : int;
  lr_op_failures : int;
  lr_timed_out : bool;
  lr_stats_servers : int;
  lr_crash_exits : int;   (** Crash-point exits (code 70) observed. *)
  lr_quarantined : int;   (** Quarantine files present after the run. *)
  lr_ok : bool;
  lr_why : string;        (** Diagnosis when [not lr_ok]. *)
}

type cell = {
  cl_scenario : string;
  cl_algo : string;
  cl_green : bool;
  cl_runs : run_result list;
  cl_ok : bool;
}

val run_one : config -> spec -> scenario -> seed:int -> run_result
(** One forked cluster (one process per server, crash points armed as
    the scenario says) + one forked load generator, supervised to
    completion: crash-point exits are detected, disk faults applied,
    daemons restarted, and everything torn down afterwards. *)

val run_cell : config -> spec -> scenario -> cell
(** [lc_seeds] runs for a green scenario, one for a robustness one. *)

val campaign : config -> spec list -> cell list
(** Every spec x (green scenarios + robustness scenarios). *)

val all_ok : cell list -> bool
val report : cell list -> Sb_util.Table.t
val explain_failures : Format.formatter -> cell list -> unit

val write_report : string -> cell list -> unit
(** Flat-JSON campaign summary (CHAOS_live_report.json): overall
    verdict plus one object per cell. *)
