type partition_mode = Isolate_drop | Isolate_hold

type partition = {
  p_name : string;
  p_servers : int list;
  p_start : int;
  p_heal : int;
  p_mode : partition_mode;
}

type byz = { bz_behaviour : Sb_adversary.Byz.behaviour; bz_budget : int }

type t = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_steps : int;
  fragment : float;
  partitions : partition list;
  crashes : (int * int) list;
  recoveries : (int * int) list;
  byz : byz option;
}

let none =
  { drop = 0.0;
    duplicate = 0.0;
    delay = 0.0;
    delay_steps = 16;
    fragment = 0.0;
    partitions = [];
    crashes = [];
    recoveries = [];
    byz = None;
  }

let lossy ?(duplicate = 0.0) ?(delay = 0.0) ?(delay_steps = 16)
    ?(fragment = 0.0) drop =
  { none with drop; duplicate; delay; delay_steps; fragment }

let crash_recovery ~server ~crash_at ~recover_at t =
  if recover_at <= crash_at then
    invalid_arg "Sb_faults.Plan.crash_recovery: recovery must follow the crash";
  { t with
    crashes = t.crashes @ [ (crash_at, server) ];
    recoveries = t.recoveries @ [ (recover_at, server) ];
  }

let byzantine ~behaviour ~budget t =
  { t with byz = Some { bz_behaviour = behaviour; bz_budget = budget } }

let partition ~name ~servers ~start ~heal ?(mode = Isolate_hold) t =
  if heal <= start then
    invalid_arg "Sb_faults.Plan.partition: heal must follow start";
  { t with
    partitions =
      t.partitions
      @ [ { p_name = name; p_servers = servers; p_start = start; p_heal = heal;
            p_mode = mode } ];
  }

let isolation t ~now server =
  List.fold_left
    (fun acc p ->
      if p.p_start <= now && now < p.p_heal && List.mem server p.p_servers then
        match (acc, p.p_mode) with
        | Some Isolate_drop, _ | _, Isolate_drop -> Some Isolate_drop
        | _, Isolate_hold -> Some Isolate_hold
      else acc)
    None t.partitions

let last_heal t =
  List.fold_left (fun acc p -> max acc p.p_heal) min_int t.partitions

let rate_ok r = r >= 0.0 && r <= 1.0

let validate ~n ~f t =
  if
    not
      (rate_ok t.drop && rate_ok t.duplicate && rate_ok t.delay
      && rate_ok t.fragment)
  then invalid_arg "Sb_faults.Plan.validate: rates must lie in [0, 1]";
  if t.drop +. t.duplicate +. t.delay > 1.0 then
    invalid_arg "Sb_faults.Plan.validate: drop + duplicate + delay must be <= 1";
  if t.delay > 0.0 && t.delay_steps < 1 then
    invalid_arg "Sb_faults.Plan.validate: delay_steps must be >= 1";
  let server_ok s = s >= 0 && s < n in
  List.iter
    (fun p ->
      if p.p_servers = [] || not (List.for_all server_ok p.p_servers) then
        invalid_arg
          (Printf.sprintf
             "Sb_faults.Plan.validate: partition %S names an unknown server"
             p.p_name))
    t.partitions;
  List.iter
    (fun (_, s) ->
      if not (server_ok s) then
        invalid_arg "Sb_faults.Plan.validate: crash/recovery of an unknown server")
    (t.crashes @ t.recoveries);
  (* Sweep the crash/recovery schedule and check that it never asks for
     more than [f] servers down at once (recoveries at a time tie are
     applied first, matching the injection policy's priority). *)
  let events =
    List.sort compare
      (List.map (fun (tm, s) -> (tm, 1, s)) t.crashes
      @ List.map (fun (tm, s) -> (tm, 0, s)) t.recoveries)
  in
  let down = ref 0 and worst = ref 0 in
  List.iter
    (fun (_, kind, _) ->
      if kind = 1 then begin
        incr down;
        if !down > !worst then worst := !down
      end
      else if !down > 0 then decr down)
    events;
  if !worst > f then
    invalid_arg "Sb_faults.Plan.validate: crash schedule exceeds the f budget";
  (* The Byzantine entry is validated with the typed Model error, not an
     Invalid_argument: an over-budget adversary is a {e policy} mistake
     the caller may want to match on (the CLI prints it and exits
     nonzero; negative-control harnesses bypass validation entirely and
     build the over-budget world by hand). *)
  match t.byz with
  | None -> ()
  | Some b ->
    Sb_baseobj.Model.validate ~f
      (Sb_baseobj.Model.Byzantine { budget = b.bz_budget })
