(** Declarative fault plans for the message-passing runtime.

    A plan is pure data: per-message fault probabilities, named network
    partitions with heal times, and a crash/recovery schedule.  The
    seeded interpreter lives in {!Inject}; two runs of the same plan
    with the same seed make identical decisions. *)

type partition_mode =
  | Isolate_drop  (** Messages crossing the partition are lost. *)
  | Isolate_hold
      (** Messages crossing the partition are held in their channels and
          delivered after the heal — the channel bits stay visible to
          the storage accounting for the whole outage. *)

type partition = {
  p_name : string;
  p_servers : int list;  (** Servers cut off from every client. *)
  p_start : int;         (** Simulation time the partition appears. *)
  p_heal : int;          (** Simulation time it heals ([> p_start]). *)
  p_mode : partition_mode;
}

type byz = {
  bz_behaviour : Sb_adversary.Byz.behaviour;
  bz_budget : int;  (** How many base objects the behaviour compromises. *)
}
(** Declarative Byzantine entry: which lying behaviour, over how many
    objects.  The seeded liar selection and the per-delivery decisions
    come from [Sb_adversary.Byz.policy] at interpretation time. *)

type t = {
  drop : float;       (** Per-message loss probability. *)
  duplicate : float;  (** Per-message network-duplication probability. *)
  delay : float;      (** Per-message probability of an extra hold. *)
  delay_steps : int;  (** Maximum extra hold, in simulation steps. *)
  fragment : float;
      (** Per-frame probability of fragmented/partial delivery.  Only
          meaningful to the live transport ({!Live}), where a frame is
          split into staggered partial writes through the peer's
          incremental reader; the simulated transport delivers whole
          messages and ignores it. *)
  partitions : partition list;
  crashes : (int * int) list;     (** [(time, server)] crash points. *)
  recoveries : (int * int) list;  (** [(time, server)] recovery points. *)
  byz : byz option;  (** Byzantine base-object behaviour, if any. *)
}

val none : t
(** The fault-free plan: under it {!Inject.policy} behaves like a fair
    random scheduler. *)

val lossy :
  ?duplicate:float -> ?delay:float -> ?delay_steps:int -> ?fragment:float ->
  float -> t
(** [lossy drop] is a message-fault-only plan.  Defaults: no
    duplication, no delay, no fragmentation. *)

val crash_recovery : server:int -> crash_at:int -> recover_at:int -> t -> t
(** Adds one crash/recovery pair for [server].  Raises
    [Invalid_argument] unless [recover_at > crash_at]. *)

val partition :
  name:string ->
  servers:int list ->
  start:int ->
  heal:int ->
  ?mode:partition_mode ->
  t ->
  t
(** Adds a named partition (default mode {!Isolate_hold}). *)

val byzantine : behaviour:Sb_adversary.Byz.behaviour -> budget:int -> t -> t
(** Sets the Byzantine entry. *)

val isolation : t -> now:int -> int -> partition_mode option
(** [isolation t ~now server] is the strongest partition mode isolating
    [server] at time [now] ([Isolate_drop] dominates), or [None]. *)

val last_heal : t -> int
(** Latest heal time over all partitions ([min_int] if none). *)

val validate : n:int -> f:int -> t -> unit
(** Checks rates lie in [0, 1] and sum to at most 1, partition and
    crash/recovery schedules name servers in [0, n) with sane times, and
    the crash schedule never exceeds the [f] concurrent-crash budget.
    Raises [Invalid_argument] otherwise.  A {!byz} entry whose budget is
    negative or exceeds [f] raises the {e typed}
    [Sb_baseobj.Model.Error] instead ([Budget_exceeds_f]) — callers gate
    on it; negative-control harnesses skip validation and build the
    over-budget world directly. *)
