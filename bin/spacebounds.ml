(* spacebounds: command-line driver for the reproduction.

   Subcommands:
   - experiments     run the per-claim experiment tables (E1-E18)
   - quorums         check the quorum structure behind "await n - f"
   - replay          re-check a saved trace against the consistency levels
   - lower-bound     drive one algorithm with the adversary Ad
   - simulate        run a workload under a fair random schedule and
                     check the history's consistency
   - explore         systematically enumerate ALL schedules of a bounded
                     configuration (DPOR + bounding), check every history,
                     shrink any counterexample
   - chaos           fault-injection campaigns over the message-passing
                     emulation: loss x duplication x delay x crash/recovery,
                     sanitized, consistency-checked, accounting-checked
   - adversary-demo  step-by-step Ad walkthrough (the paper's Figure 3)
   - serve           host a register-service cluster behind Unix-domain
                     sockets (the Sb_service daemon)
   - loadgen         drive a seeded closed-loop workload against a live
                     cluster; latency/throughput, storage vs the paper's
                     bounds, consistency of the observed history *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

type algo_kind =
  | Adaptive
  | Pure_ec
  | Abd
  | Abd_atomic
  | Abd_broken
  | Abd_misdeclared
  | Premature_gc
  | Safe
  | Versioned of int
  | Rateless
  | Rw_regular
  | Rw_fcopy
  | Rw_safe
  | Byz_reg of int

let algo_conv =
  let parse s =
    match s with
    | "adaptive" -> Ok Adaptive
    | "pure-ec" -> Ok Pure_ec
    | "abd" | "replication" -> Ok Abd
    | "abd-atomic" -> Ok Abd_atomic
    | "abd-broken" -> Ok Abd_broken
    | "abd-misdeclared" -> Ok Abd_misdeclared
    | "premature-gc" -> Ok Premature_gc
    | "safe" -> Ok Safe
    | "rateless" -> Ok Rateless
    | "rw-regular" -> Ok Rw_regular
    | "rw-fcopy" -> Ok Rw_fcopy
    | "rw-safe" -> Ok Rw_safe
    | "byz-regular" -> Ok (Byz_reg 1)
    | _ -> (
      match String.split_on_char ':' s with
      | [ "versioned"; d ] -> (
        match int_of_string_opt d with
        | Some d when d >= 0 -> Ok (Versioned d)
        | _ -> Error (`Msg "versioned:<delta> needs a non-negative integer"))
      | [ "byz-regular"; b ] -> (
        match int_of_string_opt b with
        | Some b when b >= 0 -> Ok (Byz_reg b)
        | _ -> Error (`Msg "byz-regular:<b> needs a non-negative integer"))
      | _ -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s)))
  in
  let print ppf = function
    | Adaptive -> Format.fprintf ppf "adaptive"
    | Pure_ec -> Format.fprintf ppf "pure-ec"
    | Abd -> Format.fprintf ppf "abd"
    | Abd_atomic -> Format.fprintf ppf "abd-atomic"
    | Abd_broken -> Format.fprintf ppf "abd-broken"
    | Abd_misdeclared -> Format.fprintf ppf "abd-misdeclared"
    | Premature_gc -> Format.fprintf ppf "premature-gc"
    | Safe -> Format.fprintf ppf "safe"
    | Versioned d -> Format.fprintf ppf "versioned:%d" d
    | Rateless -> Format.fprintf ppf "rateless"
    | Rw_regular -> Format.fprintf ppf "rw-regular"
    | Rw_fcopy -> Format.fprintf ppf "rw-fcopy"
    | Rw_safe -> Format.fprintf ppf "rw-safe"
    | Byz_reg b -> Format.fprintf ppf "byz-regular:%d" b
  in
  Arg.conv (parse, print)

let algo_arg =
  Arg.(
    value
    & opt algo_conv Adaptive
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"Register emulation: adaptive, pure-ec, abd (replication), \
              abd-atomic, safe, versioned:<delta>, rateless; base-object \
              emulations: rw-regular, rw-safe (read/write objects), \
              byz-regular:<b> (Byzantine objects); seeded bugs: abd-broken, \
              abd-misdeclared, premature-gc, rw-fcopy.")

let value_bytes_arg =
  Arg.(
    value
    & opt int Sb_experiments.Experiments.default_value_bytes
    & info [ "value-bytes" ] ~docv:"BYTES" ~doc:"Value size; D = 8*BYTES bits.")

let f_arg =
  Arg.(value & opt int 4 & info [ "f" ] ~docv:"F" ~doc:"Base-object failures tolerated.")

let k_arg =
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Code dimension (k-of-n).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let build ?(rw_writers = 1) ~algo ~value_bytes ~f ~k () =
  match algo with
  | Abd | Abd_atomic | Abd_broken | Abd_misdeclared ->
    let n = (2 * f) + 1 in
    let cfg =
      { Sb_registers.Common.n; f;
        codec = Sb_codec.Codec.replication ~value_bytes ~n }
    in
    let make =
      match algo with
      | Abd -> Sb_registers.Abd.make
      | Abd_atomic -> Sb_registers.Abd_atomic.make
      | Abd_misdeclared -> Sb_registers.Abd.make_misdeclared_merge
      | _ -> Sb_registers.Abd.make_broken ~quorum_slack:1
    in
    (make cfg, cfg)
  | Rw_regular | Rw_fcopy ->
    (* Full replication over read/write base objects: each of the
       [rw_writers] writers owns a group of 2f+1 cells. *)
    let n = rw_writers * ((2 * f) + 1) in
    let cfg =
      { Sb_registers.Common.n; f;
        codec = Sb_codec.Codec.replication ~value_bytes ~n }
    in
    let make =
      match algo with
      | Rw_regular -> Sb_registers.Rw_replica.make ~writers:rw_writers
      | _ -> Sb_registers.Rw_replica.make_fcopy ~writers:rw_writers
    in
    (make cfg, cfg)
  | Byz_reg b ->
    let n = (2 * f) + (2 * b) + 1 in
    let cfg =
      { Sb_registers.Common.n; f;
        codec = Sb_codec.Codec.replication ~value_bytes ~n }
    in
    (Sb_registers.Byz_regular.make ~budget:b cfg, cfg)
  | _ ->
    let n = (2 * f) + k in
    let codec =
      if n <= 256 then Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n
      else Sb_codec.Codec.rs_vandermonde16 ~value_bytes ~k ~n
    in
    let cfg = { Sb_registers.Common.n; f; codec } in
    let make =
      match algo with
      | Adaptive -> Sb_registers.Adaptive.make
      | Pure_ec -> Sb_registers.Adaptive.make_unbounded
      | Safe -> Sb_registers.Safe_register.make
      | Rw_safe -> Sb_registers.Rw_replica.make_safe
      | Premature_gc -> Sb_registers.Adaptive.make_premature_gc
      | Versioned delta -> Sb_registers.Adaptive.make_versioned ~delta
      | Rateless -> fun cfg -> Sb_registers.Rateless.make ~codec_seed:7 cfg
      | Abd | Abd_atomic | Abd_broken | Abd_misdeclared | Rw_regular
      | Rw_fcopy | Byz_reg _ -> assert false
    in
    (make cfg, cfg)

(* The base-object model each emulation is written against; the
   --base-model flag can override it (e.g. to run ABD over rw objects
   and watch the sanitizers object). *)
let default_base_model = function
  | Rw_regular | Rw_fcopy | Rw_safe -> Sb_baseobj.Model.Read_write
  | Byz_reg b -> Sb_baseobj.Model.Byzantine { budget = b }
  | _ -> Sb_baseobj.Model.Rmw

(* ------------------------------------------------------------------ *)
(* Sanitizers (Sb_sanitize)                                            *)
(* ------------------------------------------------------------------ *)

(* The code dimension the monitors should reason with: the replication
   family always runs with k = 1 regardless of the --k flag. *)
let code_k ~algo ~k =
  match algo with
  | Abd | Abd_atomic | Abd_broken | Abd_misdeclared | Rw_regular | Rw_fcopy
  | Byz_reg _ -> 1
  | _ -> k

(* Storage floor asserted by the Storage_floor sanitizer rule: full-copy
   rw emulations must keep (f+1) live D-bit copies per writer group at
   all times; Byzantine masking emulations keep f+1 honest copies. *)
let storage_floor ?(rw_writers = 1) ~algo ~value_bytes ~f () =
  let d_bits = 8 * value_bytes in
  match algo with
  (* The floor a correct rw emulation must keep; rw-fcopy (the seeded
     bug) gets the same floor and is expected to trip it. *)
  | Rw_regular | Rw_fcopy -> Some (rw_writers * (f + 1), d_bits)
  | Byz_reg _ -> Some (f + 1, d_bits)
  | _ -> None

(* The availability (premature-GC) monitor is sound only for algorithms
   that promise a decodable readable frontier at all times; the safe and
   bounded-version registers transiently violate it by design. *)
let sanitize_cfg ?byz ?rw_writers ?(value_bytes = 0) ~algo ~f ~k () =
  let reg_avail =
    match algo with
    (* premature-gc is the seeded availability bug: the monitor that
       catches it must of course be armed. *)
    | Adaptive | Pure_ec | Abd | Abd_atomic | Premature_gc | Rw_regular
    | Byz_reg _ -> true
    | Abd_broken | Abd_misdeclared | Safe | Versioned _ | Rateless | Rw_fcopy
    | Rw_safe -> false
  in
  let floor =
    if value_bytes = 0 then None
    else storage_floor ?rw_writers ~algo ~value_bytes ~f ()
  in
  Sb_sanitize.Monitor.config ~reg_avail ?floor ?byz ~k:(code_k ~algo ~k) ()

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:"Attach the Sb_sanitize invariant monitors (commutativity, \
              storage accounting, quorum discipline, oracle symmetry, \
              premature-GC, crash discipline) to every execution; any \
              violation aborts with a shrunk replayable schedule.")

(* ------------------------------------------------------------------ *)
(* Base-object model flags                                             *)
(* ------------------------------------------------------------------ *)

let base_model_conv =
  let parse s =
    match Sb_baseobj.Model.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Sb_baseobj.Model.pp)

let base_model_arg =
  Arg.(
    value
    & opt (some base_model_conv) None
    & info [ "base-model" ] ~docv:"MODEL"
        ~doc:"Base-object model: rmw (arbitrary atomic read-modify-write), \
              rw (read + blind overwrite only), byz:<b> (RMW objects, up to \
              b of which lie).  Defaults to the model the chosen emulation \
              is written against.")

let byz_behaviour_conv =
  let parse s =
    match Sb_adversary.Byz.behaviour_of_string s with
    | Ok b -> Ok b
    | Error e -> Error (`Msg e)
  in
  let print ppf b =
    Format.fprintf ppf "%s" (Sb_adversary.Byz.behaviour_to_string b)
  in
  Arg.conv (parse, print)

let byz_behaviour_arg =
  Arg.(
    value
    & opt byz_behaviour_conv Sb_adversary.Byz.Stale_echo
    & info [ "byz-behaviour" ] ~docv:"B"
        ~doc:"Lying policy for compromised base objects: stale-echo, \
              split-brain, or poison.  Only meaningful under a byz:<b> \
              base model.")

(* Resolve the effective model and per-run Byzantine policy for a CLI
   invocation, applying the policy-level budget gate (budget <= f). *)
let resolve_model ?override ~algo ~f () =
  let model =
    match override with Some m -> m | None -> default_base_model algo
  in
  Sb_baseobj.Model.validate ~f model;
  model

let byz_policy_of ~seed ~n ~model behaviour =
  match (model : Sb_baseobj.Model.t) with
  | Byzantine { budget } when budget > 0 ->
    Some (Sb_adversary.Byz.policy ~seed ~n ~budget behaviour)
  | _ -> None

(* Typed base-object model errors become exit-code-2 usage errors
   instead of backtraces. *)
let with_model_errors body =
  try body () with
  | Sb_baseobj.Model.Error e ->
    Printf.eprintf "base-object model error: %s\n"
      (Sb_baseobj.Model.error_to_string e);
    exit 2

let report_sanitizer_violation (r : Sb_sanitize.Monitor.report) =
  let module E = Sb_modelcheck.Explore in
  Format.printf "SANITIZER VIOLATION %a@." Sb_sanitize.Monitor.pp_violation
    r.Sb_sanitize.Monitor.r_violation;
  Format.printf "shrunk schedule: %d decisions (from %d):@.%a@."
    (List.length r.Sb_sanitize.Monitor.r_shrunk)
    (List.length r.Sb_sanitize.Monitor.r_decisions)
    E.pp_decisions r.Sb_sanitize.Monitor.r_shrunk

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "only" ] ~docv:"ID" ~doc:"Run a single experiment (E1..E18).")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Also write each experiment's table as DIR/<id>.csv.")
  in
  let markdown =
    Arg.(
      value
      & opt (some string) None
      & info [ "markdown" ] ~docv:"FILE"
          ~doc:"Also write a self-contained markdown report to FILE.")
  in
  let run only csv_dir markdown =
    let outcomes = Sb_experiments.Experiments.all () in
    let outcomes =
      match only with
      | None -> outcomes
      | Some id ->
        List.filter
          (fun (o : Sb_experiments.Experiments.outcome) ->
            String.lowercase_ascii o.id = String.lowercase_ascii id)
          outcomes
    in
    if outcomes = [] then begin
      prerr_endline "no such experiment";
      exit 2
    end;
    List.iter Sb_experiments.Experiments.print_outcome outcomes;
    (match csv_dir with
     | None -> ()
     | Some dir ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       List.iter
         (fun (o : Sb_experiments.Experiments.outcome) ->
           let path = Filename.concat dir (String.lowercase_ascii o.id ^ ".csv") in
           let oc = open_out path in
           output_string oc (Sb_util.Table.to_csv o.table);
           close_out oc)
         outcomes;
       Printf.printf "CSV tables written to %s/\n" dir);
    (match markdown with
     | None -> ()
     | Some file ->
       let oc = open_out file in
       output_string oc (Sb_experiments.Experiments.to_markdown outcomes);
       close_out oc;
       Printf.printf "markdown report written to %s\n" file);
    if List.for_all (fun (o : Sb_experiments.Experiments.outcome) -> o.ok) outcomes
    then print_endline "all experiment shapes match the paper"
    else begin
      print_endline "SOME EXPERIMENT SHAPES DO NOT MATCH";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the per-claim experiments (E1-E18).")
    Term.(const run $ only $ csv_dir $ markdown)

(* ------------------------------------------------------------------ *)
(* lower-bound                                                         *)
(* ------------------------------------------------------------------ *)

let lower_bound_cmd =
  let c_arg =
    Arg.(value & opt int 4 & info [ "c" ] ~docv:"C" ~doc:"Concurrent writers.")
  in
  let ell_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ell" ] ~docv:"BITS" ~doc:"Adversary threshold (default D/2).")
  in
  let run algo value_bytes f k c ell =
    let algorithm, cfg = build ~algo ~value_bytes ~f ~k () in
    let r = Sb_adversary.Lower_bound.run ?ell_bits:ell ~algorithm ~cfg ~c () in
    let d = 8 * value_bytes in
    Printf.printf "algorithm        : %s\n" algorithm.Sb_sim.Runtime.name;
    Printf.printf "n, f, k, c, D    : %d, %d, %d, %d, %d bits\n" cfg.n cfg.f k c d;
    Printf.printf "branch reached   : %s\n"
      (match r.branch with
       | Frozen_objects -> "frozen objects (|F| > f)"
       | Saturated_writes -> "saturated writes (|C+| = c)"
       | Exhausted -> "step budget exhausted");
    Printf.printf "steps            : %d\n" r.steps;
    Printf.printf "max storage      : %d bits in objects, %d incl. in-flight\n"
      r.max_obj_bits r.max_total_bits;
    Printf.printf "Theorem 1 bound  : %d bits  (min((f+1)ell, c(D-ell+1)))\n"
      r.lower_bound_bits;
    Printf.printf "completed writes : %d\n" r.completed_writes
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Drive an algorithm with the adversary Ad (Definition 7).")
    Term.(const run $ algo_arg $ value_bytes_arg $ f_arg $ k_arg $ c_arg $ ell_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let writers =
    Arg.(value & opt int 3 & info [ "writers" ] ~docv:"N" ~doc:"Writer clients.")
  in
  let writes_each =
    Arg.(value & opt int 2 & info [ "writes-each" ] ~docv:"N" ~doc:"Writes per writer.")
  in
  let readers =
    Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N" ~doc:"Reader clients.")
  in
  let reads_each =
    Arg.(value & opt int 2 & info [ "reads-each" ] ~docv:"N" ~doc:"Reads per reader.")
  in
  let show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Write the run's event trace to FILE (replayable with the \
                replay command).")
  in
  let run algo value_bytes f k seed writers writes_each readers reads_each show_trace
      save sanitize base_model byz_behaviour =
   with_model_errors @@ fun () ->
    (match algo with
     | (Rw_safe | Byz_reg _) when writers > 1 ->
       Printf.eprintf
         "%s is a single-writer emulation; rerun with --writers 1\n"
         (Format.asprintf "%a" (Arg.conv_printer algo_conv) algo);
       exit 2
     | _ -> ());
    let rw_writers = writers in
    let algorithm, cfg = build ~rw_writers ~algo ~value_bytes ~f ~k () in
    let model = resolve_model ?override:base_model ~algo ~f () in
    let byz = byz_policy_of ~seed ~n:cfg.n ~model byz_behaviour in
    Option.iter (Sb_baseobj.Model.check_policy model ~n:cfg.n) byz;
    let workload =
      Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers
        ~writes_each ~readers ~reads_each
    in
    if sanitize then begin
      let mk_world () =
        Sb_sim.Runtime.create ~seed ~base_model:model ?byz ~algorithm ~n:cfg.n
          ~f:cfg.f ~workload ()
      in
      match
        Sb_sanitize.Monitor.run
          (sanitize_cfg
             ?byz:(Option.map (fun p -> p.Sb_baseobj.Model.bp_compromised) byz)
             ~rw_writers ~value_bytes ~algo ~f ~k ())
          ~mk_world
          (Sb_sim.Runtime.random_policy ~seed ())
      with
      | Ok (_, m) ->
        Printf.printf "sanitizers      : ok (%d events monitored)\n"
          (Sb_sanitize.Monitor.events_seen m)
      | Error r ->
        report_sanitizer_violation r;
        exit 1
    end;
    let m =
      Sb_experiments.Runs.measure ~seed ~base_model:model ?byz ~algorithm ~cfg
        ~workload ()
    in
    if show_trace then
      Format.printf "%a@." Sb_spec.History.pp m.history;
    (match save with
     | None -> ()
     | Some file ->
       (* Re-run deterministically to recover the raw trace (measure
          consumes the world). *)
       let w =
         Sb_sim.Runtime.create ~seed ~base_model:model ?byz ~algorithm ~n:cfg.n
           ~f:cfg.f ~workload ()
       in
       ignore (Sb_sim.Runtime.run w (Sb_sim.Runtime.random_policy ~seed ()));
       let oc = open_out file in
       List.iter
         (fun line ->
           output_string oc line;
           output_char oc '\n')
         (Sb_sim.Trace.to_lines (Sb_sim.Runtime.trace w));
       close_out oc;
       Printf.printf "trace saved to %s\n" file);
    Printf.printf "algorithm       : %s (n=%d f=%d k=%d D=%d bits, seed %d)\n"
      m.algorithm cfg.n cfg.f k (8 * value_bytes) seed;
    Printf.printf "steps           : %d (quiescent: %b)\n" m.steps m.quiescent;
    Printf.printf "writes          : %d/%d completed\n" m.completed_writes m.invoked_writes;
    Printf.printf "reads           : %d/%d completed (max %d rounds)\n"
      m.completed_reads m.invoked_reads m.max_read_rounds;
    Printf.printf "storage         : max %d bits (obj), %d (total), final %d\n"
      m.max_obj_bits m.max_total_bits m.final_obj_bits;
    Format.printf "weak regularity : %a@." Sb_spec.Regularity.pp_verdict m.weak;
    Format.printf "strong regular. : %a@." Sb_spec.Regularity.pp_verdict m.strong
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a workload under a fair random schedule.")
    Term.(
      const run $ algo_arg $ value_bytes_arg $ f_arg $ k_arg $ seed_arg $ writers
      $ writes_each $ readers $ reads_each $ show_trace $ save $ sanitize_arg
      $ base_model_arg $ byz_behaviour_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let file =
    Arg.(
      required
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Trace file written by simulate --save.")
  in
  let run value_bytes file =
    let ic = open_in file in
    let lines = In_channel.input_lines ic in
    close_in ic;
    match Sb_sim.Trace.of_lines lines with
    | Error msg ->
      Printf.eprintf "failed to parse %s: %s\n" file msg;
      exit 1
    | Ok tr ->
      let initial = Bytes.make value_bytes '\000' in
      let history = Sb_spec.History.of_trace ~initial tr in
      Printf.printf "events     : %d\n" (Sb_sim.Trace.length tr);
      Printf.printf "writes     : %d\n" (List.length history.Sb_spec.History.writes);
      Printf.printf "reads      : %d\n" (List.length history.Sb_spec.History.reads);
      Format.printf "weak       : %a@." Sb_spec.Regularity.pp_verdict
        (Sb_spec.Regularity.check_weak history);
      Format.printf "strong     : %a@." Sb_spec.Regularity.pp_verdict
        (Sb_spec.Regularity.check_strong history);
      Format.printf "safe       : %a@." Sb_spec.Regularity.pp_verdict
        (Sb_spec.Regularity.check_safe history);
      let total_ops =
        List.length history.Sb_spec.History.writes
        + List.length history.Sb_spec.History.reads
      in
      if total_ops <= 62 then
        Format.printf "atomic     : %a@." Sb_spec.Regularity.pp_verdict
          (Sb_spec.Regularity.check_atomic history)
      else Format.printf "atomic     : skipped (history too large)@."
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-check a saved trace against the register consistency conditions.")
    Term.(const run $ value_bytes_arg $ file)

(* ------------------------------------------------------------------ *)
(* explore                                                             *)
(* ------------------------------------------------------------------ *)

let explore_cmd =
  let module E = Sb_modelcheck.Explore in
  let writers =
    Arg.(value & opt int 2 & info [ "writers" ] ~docv:"N" ~doc:"Writer clients.")
  in
  let writes_each =
    Arg.(value & opt int 1 & info [ "writes-each" ] ~docv:"N" ~doc:"Writes per writer.")
  in
  let readers =
    Arg.(value & opt int 1 & info [ "readers" ] ~docv:"N" ~doc:"Reader clients.")
  in
  let reads_each =
    Arg.(value & opt int 1 & info [ "reads-each" ] ~docv:"N" ~doc:"Reads per reader.")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~docv:"N" ~doc:"Object crashes the explorer may inject.")
  in
  let client_crashes =
    Arg.(
      value & opt int 0
      & info [ "client-crashes" ] ~docv:"N"
          ~doc:"Client crashes the explorer may inject.")
  in
  let bound_conv =
    let parse s =
      match s with
      | "exhaustive" -> Ok E.Exhaustive
      | _ -> (
        match String.split_on_char ':' s with
        | [ "delay"; d ] -> (
          match int_of_string_opt d with
          | Some d when d >= 0 -> Ok (E.Delay d)
          | _ -> Error (`Msg "delay:<d> needs a non-negative integer"))
        | [ "preempt"; p ] -> (
          match int_of_string_opt p with
          | Some p when p >= 0 -> Ok (E.Preempt p)
          | _ -> Error (`Msg "preempt:<p> needs a non-negative integer"))
        | _ ->
          Error (`Msg (Printf.sprintf "unknown bound %S (exhaustive, delay:<d>, preempt:<p>)" s)))
    in
    let print ppf = function
      | E.Exhaustive -> Format.fprintf ppf "exhaustive"
      | E.Delay d -> Format.fprintf ppf "delay:%d" d
      | E.Preempt p -> Format.fprintf ppf "preempt:%d" p
    in
    Arg.conv (parse, print)
  in
  let bound_arg =
    Arg.(
      value & opt bound_conv E.Exhaustive
      & info [ "bound" ] ~docv:"BOUND"
          ~doc:"Schedule bound: exhaustive, delay:<d>, preempt:<p>.")
  in
  let no_dpor =
    Arg.(
      value & flag
      & info [ "no-dpor" ] ~doc:"Disable sleep-set pruning (naive enumeration).")
  in
  let cache_flag =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Prune revisits of behaviourally equal worlds (state caching). \
             Only effective with the exhaustive bound.")
  in
  let compare_flag =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:"Also run without DPOR and print the pruning ratio.")
  in
  let compare_budget =
    Arg.(
      value & opt int 1_000_000
      & info [ "compare-budget" ] ~docv:"N"
          ~doc:"Schedule cap applied to both passes of $(b,--compare) (0 = \
                unbounded).  Naive enumeration is typically 10x or more \
                larger than the reduced search — and with the default f=4 \
                even the reduced space is astronomical — so without a cap \
                $(b,--compare) can appear to hang; when a cap is hit the \
                printed reduction ratio is a lower bound.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Explore on N worker domains (0 = one per core).  Subtree \
                partitioning is deterministic: every jobs level reports \
                identical totals, verdicts, and counterexamples.")
  in
  let paranoid_arg =
    Arg.(
      value & flag
      & info [ "paranoid-key" ]
          ~doc:"Cross-check the incremental state fingerprint that keys \
                $(b,--cache) against the full Marshal key at every lookup, \
                failing on any mismatch.  Test-only: retains a Marshal key \
                per distinct state, so use small configurations.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:"Re-execute every schedule from its decision trace and flag \
                any divergence (nondeterminism in protocol code).")
  in
  let max_schedules =
    Arg.(
      value & opt int 0
      & info [ "max-schedules" ] ~docv:"N" ~doc:"Stop after N schedules (0 = no cap).")
  in
  let check_conv =
    Arg.enum
      [ ("weak", `Weak); ("strong", `Strong); ("safe", `Safe); ("atomic", `Atomic) ]
  in
  let check_arg =
    Arg.(
      value & opt check_conv `Weak
      & info [ "check" ] ~docv:"LEVEL"
          ~doc:"Consistency level every history must satisfy: weak, strong, \
                safe, atomic.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"CI preset: tiny exhaustive config (1 writer, 1 reader, f=1) \
                with lint on, plus a seeded abd-broken violation/shrink check.")
  in
  let replay_file =
    Arg.(
      value & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a decision-trace file (one decision per line, as \
                printed for a counterexample) instead of exploring; print \
                the resulting history and verdict.")
  in
  let save_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"On violation, save the shrunk decision trace to FILE \
                (replayable with --replay).")
  in
  let checker = function
    | `Weak -> ("weak regularity", Sb_spec.Regularity.check_weak)
    | `Strong -> ("strong regularity", Sb_spec.Regularity.check_strong)
    | `Safe -> ("safeness", Sb_spec.Regularity.check_safe)
    | `Atomic -> ("atomicity", fun h -> Sb_spec.Regularity.check_atomic h)
  in
  let mk_config ?(paranoid_key = false) ?base_model
      ?(byz_behaviour = Sb_adversary.Byz.Stale_echo) ~algo ~value_bytes ~f ~k
      ~seed ~writers ~writes_each ~readers ~reads_each ~crashes ~client_crashes
      ~bound ~dpor ~cache ~lint ~max_schedules ~check () =
    let algorithm, cfg = build ~rw_writers:writers ~algo ~value_bytes ~f ~k () in
    let model = resolve_model ?override:base_model ~algo ~f () in
    let byz = byz_policy_of ~seed ~n:cfg.n ~model byz_behaviour in
    Option.iter (Sb_baseobj.Model.check_policy model ~n:cfg.n) byz;
    let workload =
      Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers
        ~writes_each ~readers ~reads_each
    in
    let _, check_fn = checker check in
    ( algorithm,
      cfg,
      E.config ~seed ~dpor ~cache ~paranoid_key ~bound ~crash_objs:crashes
        ~crash_clients:client_crashes ~base_model:model ?byz
        ~max_schedules ~lint ~algorithm ~n:cfg.n ~f:cfg.f ~workload
        ~initial:(Bytes.make value_bytes '\000') ~check:check_fn () )
  in
  let report_violation econfig (v : E.violation) save =
    (match v.E.v_counterexample.Sb_spec.Regularity.cx_reason with
     | Sb_spec.Regularity.Search_budget _ ->
       Format.printf
         "note: the atomicity search ran out of budget — the verdict below \
          is INCONCLUSIVE, not a refutation@."
     | _ -> ());
    Format.printf "VIOLATION (%a)@."
      Sb_spec.Regularity.pp_counterexample v.E.v_counterexample;
    Format.printf "history:@.%a@." Sb_spec.History.pp v.E.v_history;
    let orig = List.length v.E.v_decisions in
    let shrunk = Sb_modelcheck.Shrink.shrink econfig v.E.v_decisions in
    Format.printf "shrunk schedule: %d decisions (from %d):@.%a@."
      (List.length shrunk) orig E.pp_decisions shrunk;
    (match Sb_modelcheck.Shrink.check_decisions econfig shrunk with
     | Some (cx, _) ->
       Format.printf "shrunk counterexample: %a@."
         Sb_spec.Regularity.pp_counterexample cx
     | None -> ());
    match save with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      List.iter
        (fun d ->
          output_string oc (Sb_sim.Runtime.decision_to_string d);
          output_char oc '\n')
        shrunk;
      close_out oc;
      Printf.printf "shrunk decision trace saved to %s\n" file
  in
  let run_replay ?base_model ?(byz_behaviour = Sb_adversary.Byz.Stale_echo)
      ~algo ~value_bytes ~f ~k ~seed ~writers ~writes_each ~readers
      ~reads_each ~check file =
    let algorithm, cfg = build ~rw_writers:writers ~algo ~value_bytes ~f ~k () in
    let model = resolve_model ?override:base_model ~algo ~f () in
    let byz = byz_policy_of ~seed ~n:cfg.n ~model byz_behaviour in
    let workload =
      Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers
        ~writes_each ~readers ~reads_each
    in
    let ic = open_in file in
    let lines =
      List.filter (fun l -> String.trim l <> "") (In_channel.input_lines ic)
    in
    close_in ic;
    let decisions =
      List.map
        (fun l ->
          match Sb_sim.Runtime.decision_of_string (String.trim l) with
          | Ok d -> d
          | Error msg ->
            Printf.eprintf "bad decision %S: %s\n" l msg;
            exit 2)
        lines
    in
    let w =
      Sb_sim.Runtime.create ~seed ~base_model:model ?byz ~algorithm ~n:cfg.n
        ~f:cfg.f ~workload ()
    in
    let applied = Sb_sim.Runtime.replay w decisions in
    Printf.printf "replayed %d/%d decisions\n" applied (List.length decisions);
    let h =
      Sb_spec.History.of_trace ~initial:(Bytes.make value_bytes '\000')
        (Sb_sim.Runtime.trace w)
    in
    Format.printf "history:@.%a@." Sb_spec.History.pp h;
    let name, check_fn = checker check in
    match check_fn h with
    | Sb_spec.Regularity.Ok ->
      Printf.printf "%s: ok\n" name
    | Sb_spec.Regularity.Violation cx ->
      Format.printf "%s: VIOLATION (%a)@." name
        Sb_spec.Regularity.pp_counterexample cx;
      exit 1
  in
  let run algo value_bytes f k seed writers writes_each readers reads_each
      crashes client_crashes bound no_dpor cache paranoid_key compare_flag
      compare_budget jobs lint max_schedules check quick replay_file save
      sanitize base_model byz_behaviour =
   with_model_errors @@ fun () ->
    (* --quick: the CI smoke preset — tiny exhaustive sweep with lint and
       the sanitizers on, then confirm the seeded abd-broken bug is found
       and shrinks. *)
    let algo, f, k, writers, writes_each, readers, reads_each, lint, sanitize =
      if quick then (Abd, 1, 1, 1, 1, 1, 1, true, true)
      else (algo, f, k, writers, writes_each, readers, reads_each, lint, sanitize)
    in
    (match algo with
     | (Rw_safe | Byz_reg _) when writers > 1 ->
       Printf.eprintf
         "%s is a single-writer emulation; rerun with --writers 1\n"
         (Format.asprintf "%a" (Arg.conv_printer algo_conv) algo);
       exit 2
     | _ -> ());
    match replay_file with
    | Some file ->
      run_replay ?base_model ~byz_behaviour ~algo ~value_bytes ~f ~k ~seed
        ~writers ~writes_each ~readers ~reads_each ~check file
    | None ->
      let jobs = if jobs <= 0 then Sb_parallel.Pool.default_jobs () else jobs in
      (* --compare caps the reduced pass too: either side of the
         comparison can be astronomically large (the default f=4 space,
         say), and an uncapped pass looks like a hang. *)
      let max_schedules =
        if compare_flag && not no_dpor && compare_budget > 0
           && (max_schedules = 0 || compare_budget < max_schedules)
        then compare_budget
        else max_schedules
      in
      let algorithm, cfg, econfig =
        mk_config ~paranoid_key ?base_model ~byz_behaviour ~algo ~value_bytes
          ~f ~k ~seed ~writers ~writes_each ~readers ~reads_each ~crashes
          ~client_crashes ~bound ~dpor:(not no_dpor) ~cache ~lint
          ~max_schedules ~check ()
      in
      let check_name, _ = checker check in
      Printf.printf "algorithm     : %s (n=%d f=%d k=%d D=%d bits, seed %d)\n"
        algorithm.Sb_sim.Runtime.name cfg.n cfg.f k (8 * value_bytes) seed;
      Printf.printf
        "workload      : %d writer(s) x %d, %d reader(s) x %d; crashes: %d obj, %d client\n"
        writers writes_each readers reads_each crashes client_crashes;
      Format.printf
        "check         : %s; bound: %a; dpor: %s; cache: %s; sanitize: %s; jobs: %d@."
        check_name
        (Arg.conv_printer bound_conv) bound
        (if no_dpor then "off" else "on")
        (if cache then "on" else "off")
        (if sanitize then "on" else "off")
        jobs;
      let t0 = Unix.gettimeofday () in
      let outcome =
        if sanitize then begin
          let scfg =
            sanitize_cfg
              ?byz:
                (Option.map
                   (fun p -> p.Sb_baseobj.Model.bp_compromised)
                   econfig.E.byz)
              ~rw_writers:writers ~value_bytes ~algo ~f ~k ()
          in
          match Sb_sanitize.Monitor.explore_sanitized scfg econfig with
          | Ok outcome -> outcome
          | Error r ->
            report_sanitizer_violation r;
            exit 1
        end
        else Sb_parallel.Pexplore.explore ~jobs econfig
      in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%a@." E.pp_stats outcome.E.stats;
      Printf.printf "wall time     : %.2fs\n" dt;
      Printf.printf "complete      : %b\n" outcome.E.complete;
      if compare_flag && not no_dpor then begin
        (* The naive pass gets its own budget: unreduced enumeration is
           routinely 10x+ the reduced search, so an uncapped comparison
           looks like a hang on anything non-trivial. *)
        let naive_cap =
          if compare_budget > 0 && (max_schedules = 0 || compare_budget < max_schedules)
          then compare_budget
          else max_schedules
        in
        let _, _, naive =
          mk_config ?base_model ~byz_behaviour ~algo ~value_bytes ~f ~k ~seed
            ~writers ~writes_each ~readers ~reads_each ~crashes ~client_crashes
            ~bound ~dpor:false ~cache:false ~lint:false
            ~max_schedules:naive_cap ~check ()
        in
        let n_out = E.explore naive in
        (if n_out.E.complete then
           Printf.printf "naive         : %d schedules, %d transitions\n"
             n_out.E.stats.E.schedules n_out.E.stats.E.transitions
         else if n_out.E.first_violation <> None then
           Printf.printf
             "naive         : stopped on a violation after %d schedules\n"
             n_out.E.stats.E.schedules
         else
           Printf.printf
             "naive         : stopped at the %d-schedule --compare-budget \
              (%d transitions); raise it for an exact ratio\n"
             n_out.E.stats.E.schedules n_out.E.stats.E.transitions);
        if outcome.E.stats.E.schedules > 0 then
          Printf.printf "dpor reduction: %s%.2fx fewer schedules%s\n"
            (if n_out.E.complete then "" else ">= ")
            (float_of_int n_out.E.stats.E.schedules
            /. float_of_int outcome.E.stats.E.schedules)
            (if outcome.E.complete then ""
             else
               " (reduced search hit the budget too; ratio is indicative \
                only)")
      end;
      if outcome.E.stats.E.lint_failures > 0 then begin
        Printf.printf "DETERMINISM LINT FAILED (%d schedules diverged on replay)\n"
          outcome.E.stats.E.lint_failures;
        exit 1
      end;
      (match outcome.E.first_violation with
       | Some v ->
         report_violation econfig v save;
         exit 1
       | None -> Printf.printf "result        : no violation\n");
      if quick then begin
        (* Second half of the CI preset: the seeded bug must be caught
           and must shrink to a short schedule. *)
        let _, _, broken =
          mk_config ~algo:Abd_broken ~value_bytes ~f ~k ~seed ~writers:2
            ~writes_each:1 ~readers:1 ~reads_each:1 ~crashes ~client_crashes
            ~bound ~dpor:true ~cache:false ~lint:false ~max_schedules:0
            ~check:`Weak ()
        in
        let b_out = E.explore broken in
        match b_out.E.first_violation with
        | None ->
          print_endline "quick check   : FAILED (abd-broken violation not found)";
          exit 1
        | Some v ->
          let shrunk = Sb_modelcheck.Shrink.shrink broken v.E.v_decisions in
          Printf.printf
            "quick check   : abd-broken violation found and shrunk to %d decisions\n"
            (List.length shrunk);
          (* Third leg: the independence relation behind the DPOR pruning
             above must survive its own audit on this configuration. *)
          let audit = Sb_sanitize.Audit.audit ~max_states:200 econfig in
          if Sb_sanitize.Audit.ok audit then
            Printf.printf
              "quick audit   : independence relation green (%d states, %d pairs)\n"
              audit.Sb_sanitize.Audit.a_states audit.Sb_sanitize.Audit.a_pairs
          else begin
            Format.printf "quick audit   : INDEPENDENCE DIVERGENCE@.%a@."
              Sb_sanitize.Audit.pp_divergence
              (List.hd audit.Sb_sanitize.Audit.a_divergences);
            exit 1
          end
      end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Systematically explore all schedules of a bounded configuration \
             (sleep-set DPOR, optional delay/preemption bounding), checking \
             every history; shrink and print any counterexample.")
    Term.(
      const run $ algo_arg $ value_bytes_arg $ f_arg $ k_arg $ seed_arg
      $ writers $ writes_each $ readers $ reads_each $ crashes $ client_crashes
      $ bound_arg $ no_dpor $ cache_flag $ paranoid_arg $ compare_flag
      $ compare_budget $ jobs_arg $ lint $ max_schedules $ check_arg $ quick
      $ replay_file $ save_arg $ sanitize_arg $ base_model_arg
      $ byz_behaviour_arg)

(* ------------------------------------------------------------------ *)
(* audit — machine-check the DPOR independence relation                *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  let module E = Sb_modelcheck.Explore in
  let writers =
    Arg.(value & opt int 2 & info [ "writers" ] ~docv:"N" ~doc:"Writer clients.")
  in
  let writes_each =
    Arg.(value & opt int 1 & info [ "writes-each" ] ~docv:"N" ~doc:"Writes per writer.")
  in
  let readers =
    Arg.(value & opt int 1 & info [ "readers" ] ~docv:"N" ~doc:"Reader clients.")
  in
  let reads_each =
    Arg.(value & opt int 1 & info [ "reads-each" ] ~docv:"N" ~doc:"Reads per reader.")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~docv:"N" ~doc:"Object crashes to audit over.")
  in
  let max_states =
    Arg.(
      value & opt int 500
      & info [ "max-states" ] ~docv:"N" ~doc:"States to expand before stopping.")
  in
  let mutate =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:"Mutation test: audit a deliberately weakened relation that \
                also declares same-object mutating deliveries independent. \
                The audit must report a divergence; exits 0 when it does.")
  in
  let run algo value_bytes f k seed writers writes_each readers reads_each
      crashes max_states mutate =
   with_model_errors @@ fun () ->
    let algorithm, cfg =
      build ~rw_writers:writers ~algo ~value_bytes ~f ~k ()
    in
    let model = resolve_model ~algo ~f () in
    let workload =
      Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers
        ~writes_each ~readers ~reads_each
    in
    let econfig =
      E.config ~seed ~crash_objs:crashes ~base_model:model ~algorithm ~n:cfg.n
        ~f:cfg.f ~workload ~initial:(Bytes.make value_bytes '\000')
        ~check:Sb_spec.Regularity.check_weak ()
    in
    let relation =
      if mutate then
        Some
          (fun (a : E.action) (b : E.action) ->
            match a.E.kind, b.E.kind with
            | E.KDeliver, E.KDeliver -> true (* ignores same-object conflicts *)
            | _ -> E.independent a b)
      else None
    in
    Printf.printf "algorithm  : %s (n=%d f=%d k=%d, seed %d)%s\n"
      algorithm.Sb_sim.Runtime.name cfg.n cfg.f (code_k ~algo ~k) seed
      (if mutate then " [mutated relation]" else "");
    let r = Sb_sanitize.Audit.audit ?relation ~max_states econfig in
    Printf.printf
      "audited    : %d states, %d declared-independent pairs%s\n"
      r.Sb_sanitize.Audit.a_states r.Sb_sanitize.Audit.a_pairs
      (if r.Sb_sanitize.Audit.a_truncated then " (truncated)" else "");
    match r.Sb_sanitize.Audit.a_divergences, mutate with
    | [], false -> print_endline "result     : independence relation green"
    | [], true ->
      print_endline "result     : MUTATION NOT DETECTED (audit has no teeth here)";
      exit 1
    | d :: _ as ds, m ->
      Format.printf "result     : %d divergence(s)@.%a@." (List.length ds)
        Sb_sanitize.Audit.pp_divergence d;
      if m then print_endline "mutation detected, as it should be"
      else exit 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Machine-check the model checker's independence relation: replay \
             both orders of every declared-independent pair over the \
             reachable states of a configuration and flag divergence.")
    Term.(
      const run $ algo_arg $ value_bytes_arg $ f_arg $ k_arg $ seed_arg
      $ writers $ writes_each $ readers $ reads_each $ crashes $ max_states
      $ mutate)

(* ------------------------------------------------------------------ *)
(* adversary-demo (Figure 3 walkthrough)                               *)
(* ------------------------------------------------------------------ *)

let demo_cmd =
  let c_arg =
    Arg.(value & opt int 3 & info [ "c" ] ~docv:"C" ~doc:"Concurrent writers.")
  in
  let steps_arg =
    Arg.(value & opt int 40 & info [ "steps" ] ~docv:"N" ~doc:"Snapshots to print.")
  in
  let run algo value_bytes f k c steps =
    let algorithm, cfg = build ~algo ~value_bytes ~f ~k () in
    let d = 8 * value_bytes in
    let ell = d / 2 in
    let workload =
      Array.init c (fun i ->
          [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
    in
    let w =
      Sb_sim.Runtime.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload ()
    in
    Printf.printf
      "Adversary Ad vs %s: n=%d f=%d k=%d D=%d bits ell=%d (cf. paper Fig. 3)\n\n"
      algorithm.Sb_sim.Runtime.name cfg.n cfg.f k d ell;
    let count = ref 0 in
    let on_step (s : Sb_adversary.Ad.snapshot) =
      if !count < steps then begin
        incr count;
        Printf.printf
          "t=%-5d |F|=%-2d F={%s}  |C+|=%-2d C+={%s}  |C-|=%-2d  storage=%d bits\n"
          s.time (List.length s.frozen)
          (String.concat "," (List.map string_of_int s.frozen))
          (List.length s.c_plus)
          (String.concat "," (List.map (fun o -> "w" ^ string_of_int o) s.c_plus))
          (List.length s.c_minus) s.storage_obj_bits
      end
    in
    let halt_when (s : Sb_adversary.Ad.snapshot) =
      !count >= steps
      || List.length s.frozen > cfg.f
      || List.length s.c_plus >= c
    in
    let policy = Sb_adversary.Ad.policy ~ell_bits:ell ~d_bits:d ~halt_when ~on_step () in
    let _ = Sb_sim.Runtime.run w policy in
    let final = Sb_adversary.Ad.classify ~ell_bits:ell ~d_bits:d w in
    Printf.printf "\nfinal: |F|=%d (f=%d), |C+|=%d (c=%d), storage=%d bits\n"
      (List.length final.frozen) cfg.f (List.length final.c_plus) c
      final.storage_obj_bits;
    if List.length final.frozen > cfg.f then
      print_endline "=> freeze branch: f+1 objects pinned at >= ell bits each"
    else if List.length final.c_plus >= c then
      print_endline "=> saturation branch: all c writes pinned at > D-ell bits each"
  in
  Cmd.v
    (Cmd.info "adversary-demo"
       ~doc:"Print Ad's F / C+ / C- evolution step by step (paper Figure 3).")
    Term.(const run $ algo_arg $ value_bytes_arg $ f_arg $ k_arg $ c_arg $ steps_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let algo_label = function
    | Adaptive -> "adaptive"
    | Pure_ec -> "pure-ec"
    | Abd -> "abd"
    | Abd_atomic -> "abd-atomic"
    | Abd_broken -> "abd-broken"
    | Abd_misdeclared -> "abd-misdeclared"
    | Premature_gc -> "premature-gc"
    | Safe -> "safe"
    | Versioned d -> Printf.sprintf "versioned:%d" d
    | Rateless -> "rateless"
    | Rw_regular -> "rw-regular"
    | Rw_fcopy -> "rw-fcopy"
    | Rw_safe -> "rw-safe"
    | Byz_reg b -> Printf.sprintf "byz-regular:%d" b
  in
  let spec_of ?(byz_behaviour = Sb_adversary.Byz.Stale_echo) ~algo ~value_bytes
      ~f ~k () =
    (* The default chaos workload races two writers; the rw replication
       families then provision one cell group per writer. *)
    let rw_writers = match algo with Rw_regular | Rw_fcopy -> 2 | _ -> 1 in
    let _, cfg = build ~rw_writers ~algo ~value_bytes ~f ~k () in
    let check =
      match algo with
      | Abd_atomic -> Sb_spec.Regularity.check_atomic ?budget:None
      | Safe | Rw_safe -> Sb_spec.Regularity.check_safe
      | _ -> Sb_spec.Regularity.check_strong
    in
    let reg_avail =
      match algo with
      | Adaptive | Pure_ec | Abd | Abd_atomic | Rw_regular | Byz_reg _ -> true
      | _ -> false
    in
    let sp_byz =
      match algo with
      | Byz_reg b when b > 0 -> Some byz_behaviour
      | _ -> None
    in
    let sp_workload =
      match algo with
      | Rw_safe | Byz_reg _ -> Some Sb_faults.Chaos.swmr_workload
      | _ -> None
    in
    { Sb_faults.Chaos.sp_name = algo_label algo;
      sp_make = (fun () -> fst (build ~rw_writers ~algo ~value_bytes ~f ~k ()));
      sp_n = cfg.Sb_registers.Common.n;
      sp_f = cfg.Sb_registers.Common.f;
      sp_k = code_k ~algo ~k;
      sp_value_bytes = value_bytes;
      sp_reg_avail = reg_avail;
      sp_check = check;
      sp_base_model = default_base_model algo;
      sp_byz;
      sp_floor = storage_floor ~rw_writers ~algo ~value_bytes ~f ();
      sp_workload;
    }
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Sweep the whole correct-register matrix (adaptive, pure-ec, \
                abd, abd-atomic, safe, versioned:1, rateless) instead of one \
                algorithm.")
  in
  let base_models_arg =
    Arg.(
      value & flag
      & info [ "base-models" ]
          ~doc:"Sweep the base-object-model emulation matrix instead: \
                rw-regular and rw-safe over read/write objects, byz-regular \
                with lying budgets 0 and f over Byzantine objects — the \
                sibling-paper storage floors stay armed throughout \
                (write the summary with --json for a BOUNDS report).")
  in
  let f_arg =
    Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc:"Failures tolerated.")
  in
  let k_arg =
    Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Code dimension.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N" ~doc:"Scheduler seeds per campaign cell.")
  in
  let drops_arg =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.1; 0.3 ]
      & info [ "drops" ] ~docv:"RATES" ~doc:"Comma-separated drop-rate sweep.")
  in
  let duplicate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "duplicate" ] ~docv:"RATE" ~doc:"Network duplication rate.")
  in
  let delay_arg =
    Arg.(
      value & opt float 0.05
      & info [ "delay" ] ~docv:"RATE" ~doc:"Extra-delay rate.")
  in
  let no_crash_arg =
    Arg.(
      value & flag
      & info [ "no-crash" ]
          ~doc:"Skip the mid-run server crash + recovery schedule.")
  in
  let no_sanitize_arg =
    Arg.(
      value & flag
      & info [ "no-sanitize" ]
          ~doc:"Run without the Sb_sanitize monitors (they are on by default \
                in chaos campaigns).")
  in
  let budget_arg =
    Arg.(
      value & opt int 100_000
      & info [ "budget" ] ~docv:"STEPS" ~doc:"Step budget per run.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"CI-sized preset: 3 seeds, drops 0 and 0.2 (other fault flags \
                still apply).")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the report as CSV.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write a flat-JSON campaign summary to FILE (same format \
                as the BENCH_*.json metric files).")
  in
  let live_arg =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:"Run the campaign against the real stack instead of the \
                simulator: forked daemon processes per server with \
                socket-layer fault hooks (drop / duplicate / delay / \
                fragment / slow-close), deterministic crash points around \
                the persist path, seeded disk corruption with quarantine \
                recovery, and a forked SDK load generator judging \
                regularity and the Theorem 2 bounds.  With --live, --all \
                sweeps adaptive + abd; 3 seeds per green scenario (1 with \
                --quick).")
  in
  let live_report_arg =
    Arg.(
      value
      & opt string "CHAOS_live_report.json"
      & info [ "live-report" ] ~docv:"FILE"
          ~doc:"Where --live writes its flat-JSON campaign report.")
  in
  let live_spec_of ~algo ~value_bytes ~f ~k =
    let _, cfg = build ~algo ~value_bytes ~f ~k () in
    let check =
      match algo with
      | Abd_atomic -> Sb_spec.Regularity.check_atomic ?budget:None
      | Safe -> Sb_spec.Regularity.check_safe
      | _ -> Sb_spec.Regularity.check_strong
    in
    {
      Sb_faults.Live.sp_name = algo_label algo;
      sp_make = (fun () -> fst (build ~algo ~value_bytes ~f ~k ()));
      sp_n = cfg.Sb_registers.Common.n;
      sp_f = cfg.Sb_registers.Common.f;
      sp_k = code_k ~algo ~k;
      sp_value_bytes = value_bytes;
      sp_initial = Sb_registers.Common.initial_value cfg;
      sp_bounds = (algo = Adaptive);
      sp_check = check;
    }
  in
  let run_live ~algo ~all ~value_bytes ~f ~k ~seed ~quick ~report_file =
    let module L = Sb_faults.Live in
    let cfg =
      {
        (if quick then L.quick_config else L.default_config) with
        L.lc_base_seed = seed;
      }
    in
    let algos = if all then [ Adaptive; Abd ] else [ algo ] in
    let specs =
      List.map (fun algo -> live_spec_of ~algo ~value_bytes ~f ~k) algos
    in
    let cells = L.campaign cfg specs in
    Sb_util.Table.print (L.report cells);
    L.write_report report_file cells;
    Printf.printf "chaos --live: report written to %s\n" report_file;
    if L.all_ok cells then
      Printf.printf "chaos --live: all %d cells passed\n" (List.length cells)
    else begin
      L.explain_failures Format.std_formatter cells;
      print_endline "chaos --live: FAILURES (see above)";
      exit 1
    end
  in
  let run algo all base_models value_bytes f k seeds seed drops duplicate delay
      no_crash no_sanitize budget quick csv json live live_report byz_behaviour
      =
   with_model_errors @@ fun () ->
    if live then
      run_live ~algo ~all ~value_bytes ~f ~k ~seed ~quick
        ~report_file:live_report
    else
    let module C = Sb_faults.Chaos in
    let base = if quick then C.quick_config else C.default_config in
    let cfg =
      { base with
        C.seeds = (if quick then base.C.seeds else seeds);
        base_seed = seed;
        drops = (if quick then base.C.drops else drops);
        duplicate;
        delay;
        crash_recovery = not no_crash;
        sanitize = not no_sanitize;
        max_steps = budget;
        watchdog_budget = budget / 4;
      }
    in
    let algos =
      if base_models then [ Rw_regular; Rw_safe; Byz_reg 0; Byz_reg f ]
      else if all then
        [ Adaptive; Pure_ec; Abd; Abd_atomic; Safe; Versioned 1; Rateless ]
      else [ algo ]
    in
    List.iter
      (fun algo -> Sb_baseobj.Model.validate ~f (default_base_model algo))
      algos;
    let specs =
      List.map (fun algo -> spec_of ~byz_behaviour ~algo ~value_bytes ~f ~k ())
        algos
    in
    let cells = C.campaign cfg specs in
    let table = C.report cells in
    if csv then print_string (Sb_util.Table.to_csv table)
    else Sb_util.Table.print table;
    (match json with
     | None -> ()
     | Some file ->
       let floors =
         List.filter_map
           (fun (sp : C.spec) ->
             Option.map
               (fun (copies, d_bits) ->
                 ( Printf.sprintf "floor_bits_%s" sp.C.sp_name,
                   Sb_util.Jsonx.int (copies * d_bits) ))
               sp.C.sp_floor)
           specs
       in
       Sb_util.Jsonx.write file
         ([
            ("suite", Sb_util.Jsonx.str "chaos");
            ("algos", Sb_util.Jsonx.int (List.length specs));
            ("cells", Sb_util.Jsonx.int (List.length cells));
            ("runs", Sb_util.Jsonx.int (List.length cells * cfg.C.seeds));
            ("ok", Sb_util.Jsonx.bool (C.all_ok cells));
          ]
          @ floors));
    if C.all_ok cells then
      Printf.printf "chaos: all %d cells passed (%d runs)\n" (List.length cells)
        (List.length cells * cfg.C.seeds)
    else begin
      C.explain_failures Format.std_formatter cells;
      print_endline "chaos: FAILURES (see above)";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault-injection campaigns: sweep drop rates x duplication x \
             crash/recovery over seeded schedules with retransmission armed, \
             sanitizers attached, consistency checked, and channel-inclusive \
             storage accounting verified.")
    Term.(
      const run $ algo_arg $ all_arg $ base_models_arg $ value_bytes_arg
      $ f_arg $ k_arg $ seeds_arg $ seed_arg $ drops_arg $ duplicate_arg
      $ delay_arg $ no_crash_arg $ no_sanitize_arg $ budget_arg $ quick_arg
      $ csv_arg $ json_arg $ live_arg $ live_report_arg $ byz_behaviour_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let sockdir_arg =
  Arg.(
    value & opt string "/tmp/spacebounds"
    & info [ "sockdir" ] ~docv:"DIR"
        ~doc:"Directory for the per-server Unix-domain sockets.")

let serve_f_arg =
  Arg.(value & opt int 2 & info [ "f" ] ~docv:"F" ~doc:"Failures tolerated.")

let serve_k_arg =
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Code dimension.")

let serve_cmd =
  let statedir =
    Arg.(
      value & opt (some string) None
      & info [ "statedir" ] ~docv:"DIR"
          ~doc:"Persist object state + incarnation here (atomically, after \
                every mutating RMW); a restart over persisted state recovers \
                into a fresh incarnation.")
  in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:"Host the whole n-server cluster in this process (the default \
                when no --server is given).")
  in
  let server =
    Arg.(
      value & opt (some int) None
      & info [ "server" ] ~docv:"I"
          ~doc:"Host only server I — one daemon of a multi-process cluster.")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:"Disable the per-incarnation at-most-once tables.")
  in
  let wire_version =
    Arg.(
      value
      & opt int Sb_service.Wire.version
      & info [ "wire-version" ] ~docv:"V"
          ~doc:"Pin the daemon to an older wire version: frames and persisted \
                state are encoded at $(docv) and newer frames are rejected, \
                making this binary behave exactly like an old build (for \
                mixed-version rollout scenarios).")
  in
  let crash_at =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-at" ] ~docv:"SPEC"
          ~doc:"Deterministic crash-point injection: abort the process \
                (exit 70, as abruptly as SIGKILL) at the Nth persist. \
                $(docv) is persist:N (between the temp-file fsync and the \
                rename — inside the torn-write window), persist-pre:N \
                (before the temp file is touched) or persist-post:N (after \
                the rename, before the response).  Requires --statedir.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:"Keyed server-core shards per server: request keys are routed \
                by the consistent-hash ring, each shard with its own state \
                file, incarnation and at-most-once table.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:"Event-loop domains the hosted servers are partitioned across \
                (capped at the server count; incompatible with --crash-at).")
  in
  let run algo value_bytes f k sockdir statedir cluster server no_dedup
      wire_version crash_at shards domains =
    let algorithm, cfg = build ~algo ~value_bytes ~f ~k () in
    let servers =
      match (cluster, server) with
      | _, None -> List.init cfg.Sb_registers.Common.n Fun.id
      | false, Some i -> [ i ]
      | true, Some _ ->
        prerr_endline "serve: --cluster and --server are exclusive";
        exit 2
    in
    let crash_at =
      match crash_at with
      | None -> None
      | Some spec -> (
        match Sb_service.Daemon.crash_point_of_string spec with
        | Ok cp -> Some cp
        | Error msg ->
          Printf.eprintf "serve: --crash-at %s: %s\n" spec msg;
          exit 2)
    in
    if
      wire_version < Sb_service.Wire.min_version
      || wire_version > Sb_service.Wire.version
    then begin
      Printf.eprintf "serve: --wire-version %d outside %d..%d\n" wire_version
        Sb_service.Wire.min_version Sb_service.Wire.version;
      exit 2
    end;
    if shards < 1 then begin
      prerr_endline "serve: --shards must be >= 1";
      exit 2
    end;
    if domains < 1 then begin
      prerr_endline "serve: --domains must be >= 1";
      exit 2
    end;
    if domains > 1 && crash_at <> None then begin
      prerr_endline
        "serve: --crash-at counts process-wide persists and needs --domains 1";
      exit 2
    end;
    Printf.printf
      "serving %s: n=%d f=%d k=%d wire v%d, servers [%s] x%d shard(s), %d \
       domain(s) under %s%s\n%!"
      algorithm.Sb_sim.Runtime.name cfg.Sb_registers.Common.n
      cfg.Sb_registers.Common.f k wire_version
      (String.concat ";" (List.map string_of_int servers))
      shards domains sockdir
      (match statedir with
       | Some d -> Printf.sprintf " (durable: %s)" d
       | None -> "");
    Sb_service.Daemon.run ~dedup:(not no_dedup) ~wire_version ~shards ~domains
      ?statedir ?crash_at ~sockdir ~servers
      ~init_obj:algorithm.Sb_sim.Runtime.init_obj ();
    print_endline "serve: bye"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the register service: select-loop process(es) hosting a \
             whole cluster (or one server of it) behind Unix-domain sockets, \
             speaking the versioned binary wire protocol, each server hosting \
             consistent-hash keyed shards, with live \
             storage/dedup/incarnation counters on a stats endpoint.")
    Term.(
      const run $ algo_arg $ value_bytes_arg $ serve_f_arg $ serve_k_arg
      $ sockdir_arg $ statedir $ cluster $ server $ no_dedup $ wire_version
      $ crash_at $ shards $ domains)

(* ------------------------------------------------------------------ *)
(* loadgen                                                             *)
(* ------------------------------------------------------------------ *)

let loadgen_cmd =
  let writers_arg =
    Arg.(value & opt int 2 & info [ "writers" ] ~docv:"N" ~doc:"Writer clients.")
  in
  let writes_each_arg =
    Arg.(
      value & opt int 10
      & info [ "writes-each" ] ~docv:"N" ~doc:"Writes per writer.")
  in
  let readers_arg =
    Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N" ~doc:"Reader clients.")
  in
  let reads_each_arg =
    Arg.(
      value & opt int 10
      & info [ "reads-each" ] ~docv:"N" ~doc:"Reads per reader.")
  in
  let rto_arg =
    Arg.(
      value & opt int 100
      & info [ "rto" ] ~docv:"MS" ~doc:"Initial retransmission timeout (ms).")
  in
  let max_attempts_arg =
    Arg.(
      value & opt int 0
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Retransmission budget per request; 0 retries forever (rides \
                out server kills).")
  in
  let sample_arg =
    Arg.(
      value & opt int 20
      & info [ "sample-ms" ] ~docv:"MS"
          ~doc:"Storage-stats sampling period; 0 disables sampling.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 120_000
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Abort the run after this long.")
  in
  let settle_arg =
    Arg.(
      value & opt int 300
      & info [ "settle-ms" ] ~docv:"MS"
          ~doc:"Quiescence settle time before the final (GC floor) stats \
                round.")
  in
  let json_arg =
    Arg.(
      value & opt string "BENCH_service.json"
      & info [ "json" ] ~docv:"FILE" ~doc:"Metrics output file.")
  in
  let think_arg =
    Arg.(
      value & opt int 0
      & info [ "think-ms" ] ~docv:"MS"
          ~doc:"Closed-loop pacing: delay before each client's next \
                operation (lets a run span fault-injection windows).")
  in
  let no_bounds_arg =
    Arg.(
      value & flag
      & info [ "no-bound-check" ]
          ~doc:"Skip the Theorem 2 ceiling / GC floor assertions (they only \
                apply to the adaptive algorithm and are skipped automatically \
                for the others).")
  in
  let open_loop_arg =
    Arg.(
      value & flag
      & info [ "open-loop" ]
          ~doc:"Open-loop load: Poisson arrivals at --rate over --keys keys \
                instead of the closed-loop writers/readers workload.  \
                Latencies are measured from each arrival's intended start \
                (coordinated-omission-safe).")
  in
  let rate_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "rate" ] ~docv:"OPS_S"
          ~doc:"Open loop: target Poisson arrival rate, operations/second.")
  in
  let duration_arg =
    Arg.(
      value & opt int 10_000
      & info [ "duration-ms" ] ~docv:"MS"
          ~doc:"Open loop: arrival-generation window (the run then drains).")
  in
  let keys_arg =
    Arg.(
      value & opt int 100
      & info [ "keys" ] ~docv:"K"
          ~doc:"Open loop: key-space size; keys are routed to shards by the \
                consistent hash.")
  in
  let key_dist_arg =
    Arg.(
      value & opt string "uniform"
      & info [ "key-dist" ] ~docv:"DIST"
          ~doc:"Open loop: key popularity — uniform, zipf (exponent 0.99) or \
                zipf:EXP.")
  in
  let write_ratio_arg =
    Arg.(
      value & opt float 0.5
      & info [ "write-ratio" ] ~docv:"R"
          ~doc:"Open loop: probability an arrival is a write.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Open loop: concurrent operation slots (arrivals beyond this \
                queue, keeping their intended start times).")
  in
  let batch_arg =
    Arg.(
      value & opt int (-1)
      & info [ "batch" ] ~docv:"N"
          ~doc:"Request batching: buffer up to $(docv) requests per \
                connection into one Req_batch frame (v3+ peers only; 1 \
                disables).  Default: 16 under --open-loop, 1 otherwise.")
  in
  let flush_arg =
    Arg.(
      value & opt int 1
      & info [ "flush-ms" ] ~docv:"MS"
          ~doc:"Batching: a pending batch never waits longer than this for \
                co-travellers.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Gate the run against the committed baseline copy of the \
                metrics file (bench/baselines/<file>): ms_per_op and p99_ms \
                within 1.25x, plus the baseline's hard \
                gate_min_throughput_ops_s / gate_max_p99_ms floors.")
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (p *. float_of_int n /. 100.0)) - 1)))
  in
  let run algo value_bytes f k seed writers writes_each readers reads_each
      sockdir rto max_attempts sample_ms deadline_ms settle_ms think_ms json
      no_bounds open_loop rate duration_ms keys key_dist write_ratio
      max_inflight batch flush_ms check =
    let algorithm, cfg = build ~algo ~value_bytes ~f ~k () in
    let n = cfg.Sb_registers.Common.n in
    let batch = if batch >= 1 then batch else if open_loop then 16 else 1 in
    let zipf =
      match key_dist with
      | "uniform" -> 0.0
      | "zipf" -> 0.99
      | s when String.length s > 5 && String.sub s 0 5 = "zipf:" -> (
        match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
        | Some e when e > 0.0 -> e
        | _ ->
          Printf.eprintf "loadgen: bad --key-dist %s\n" s;
          exit 2)
      | s ->
        Printf.eprintf "loadgen: bad --key-dist %s\n" s;
        exit 2
    in
    let sdk_cfg =
      {
        (Sb_service.Sdk.default_config ~n ~f ~sockdir) with
        Sb_service.Sdk.rto_ms = rto;
        max_attempts;
        sample_every_ms = sample_ms;
        deadline_ms;
        think_ms;
        batch_max = batch;
        flush_ms;
      }
    in
    let r =
      if open_loop then
        Sb_service.Sdk.run_open ~algorithm ~seed
          {
            Sb_service.Sdk.ol_rate = rate;
            ol_duration_ms = duration_ms;
            ol_keys = keys;
            ol_zipf = zipf;
            ol_write_ratio = write_ratio;
            ol_max_inflight = max_inflight;
            ol_value =
              (fun i -> Sb_experiments.Workloads.distinct_value ~value_bytes i);
          }
          sdk_cfg
      else
        let workload =
          Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers
            ~writes_each ~readers ~reads_each
        in
        Sb_service.Sdk.run_workload ~algorithm ~seed ~workload sdk_cfg
    in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    Printf.printf "loadgen         : %s (n=%d f=%d k=%d, seed %d) against %s\n"
      algorithm.Sb_sim.Runtime.name n f k seed sockdir;
    if open_loop then
      Printf.printf
        "open loop       : %.0f ops/s target for %d ms over %d %s keys, %.0f%% \
         writes, %d slots, batch %d/%dms\n"
        rate duration_ms keys
        (if zipf > 0.0 then Printf.sprintf "zipf(%.2f)" zipf else "uniform")
        (100.0 *. write_ratio) max_inflight batch flush_ms;
    Printf.printf "ops             : %d/%d completed in %.0f ms (%.1f ops/s)\n"
      r.Sb_service.Sdk.ops_completed r.Sb_service.Sdk.ops_invoked
      r.Sb_service.Sdk.wall_ms
      (float_of_int r.Sb_service.Sdk.ops_completed
      /. Float.max 1e-9 (r.Sb_service.Sdk.wall_ms /. 1000.0));
    if r.Sb_service.Sdk.timed_out then fail "run timed out before completion";
    if r.Sb_service.Sdk.ops_completed < r.Sb_service.Sdk.ops_invoked then
      fail "%d operations did not complete"
        (r.Sb_service.Sdk.ops_invoked - r.Sb_service.Sdk.ops_completed);
    let lat = Array.of_list r.Sb_service.Sdk.latencies_ms in
    Array.sort compare lat;
    let p50 = percentile lat 50.0
    and p95 = percentile lat 95.0
    and p99 = percentile lat 99.0 in
    let pmax = if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1) in
    Printf.printf "latency (ms)    : p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"
      p50 p95 p99 pmax;
    Printf.printf "network         : %d retransmissions, %d reconnects, %d \
                   recoveries observed\n"
      r.Sb_service.Sdk.retransmissions r.Sb_service.Sdk.reconnects
      r.Sb_service.Sdk.recoveries_observed;
    Printf.printf "schema          : %d downgrade(s) to wire v1, %d typed \
                   reject(s)\n"
      r.Sb_service.Sdk.downgrades
      (List.length r.Sb_service.Sdk.schema_rejects);
    List.iter
      (fun (s, detail) ->
        Printf.printf "schema reject   : server %d: %s\n" s detail)
      r.Sb_service.Sdk.schema_rejects;
    if r.Sb_service.Sdk.schema_rejects <> [] then
      fail "%d server(s) refused the schema handshake"
        (List.length r.Sb_service.Sdk.schema_rejects);
    (* Consistency: the run's trace through the same checkers the
       simulators use.  Open-loop runs record no trace (the observables
       are counters and latencies), so regularity is skipped there. *)
    let weak_ok, algo_ok =
      if open_loop then begin
        print_endline "regularity      : skipped (open loop records no trace)";
        (true, true)
      end
      else begin
        let history =
          Sb_spec.History.of_trace
            ~initial:(Sb_registers.Common.initial_value cfg)
            r.Sb_service.Sdk.trace
        in
        let weak = Sb_spec.Regularity.check_weak history in
        let algo_check, algo_check_name =
          match algo with
          | Abd_atomic -> (Sb_spec.Regularity.check_atomic ?budget:None, "atomic")
          | Safe -> (Sb_spec.Regularity.check_safe, "safe")
          | _ -> (Sb_spec.Regularity.check_strong, "strong")
        in
        let algo_verdict = algo_check history in
        Format.printf "weak regularity : %a@." Sb_spec.Regularity.pp_verdict weak;
        Format.printf "%-16s: %a@."
          (Printf.sprintf "%s reg." algo_check_name)
          Sb_spec.Regularity.pp_verdict algo_verdict;
        (match weak with
         | Sb_spec.Regularity.Ok -> ()
         | _ -> fail "weak regularity violated");
        (match algo_verdict with
         | Sb_spec.Regularity.Ok -> ()
         | _ -> fail "%s regularity violated" algo_check_name);
        ( (match weak with Sb_spec.Regularity.Ok -> true | _ -> false),
          match algo_verdict with Sb_spec.Regularity.Ok -> true | _ -> false )
      end
    in
    (* Storage vs the paper's bounds.  Peak: the larger of the sampled
       total and the sum of per-server high-water marks (each is a
       conservative under-approximation of the true continuous peak
       taken independently; their max is still a measured lower bound,
       compared against the Theorem 2 ceiling). *)
    let kk = code_k ~algo ~k in
    let m = (2 * f) + kk in
    let d_bits = 8 * value_bytes in
    let c = if open_loop then max_inflight else writers in
    let ceiling_bits = min ((c + 1) * m) (m * m) * d_bits / kk in
    let floor_bits = m * d_bits / kk in
    (* Every shard carries the legacy "" register's base state, so the
       fleet-wide live-object count is keys + one per shard (a plain
       unsharded daemon reports no shard stats and counts as one). *)
    let shard_count =
      List.fold_left
        (fun acc (st : Sb_service.Wire.stats) ->
          max acc (List.length st.Sb_service.Wire.st_shards))
        1 r.Sb_service.Sdk.final_stats
    in
    let nkeys = if open_loop then keys + shard_count else 1 in
    let fleet_ceiling_bits = nkeys * ceiling_bits in
    let fleet_floor_bits = nkeys * floor_bits in
    (* Per-key footprint: on each server, no single key can hold more
       than the largest per-key high-water mark of any shard; summing
       that over servers bounds any one key's fleet-wide peak. *)
    let per_key_peak_bits =
      List.fold_left
        (fun acc (st : Sb_service.Wire.stats) ->
          acc
          +
          match st.Sb_service.Wire.st_shards with
          | [] -> st.Sb_service.Wire.st_max_bits
          | shards ->
            List.fold_left
              (fun a (ss : Sb_service.Wire.shard_stat) ->
                max a ss.Sb_service.Wire.ss_max_key_bits)
              0 shards)
        0 r.Sb_service.Sdk.final_stats
    in
    let sum_max_bits =
      List.fold_left
        (fun acc (st : Sb_service.Wire.stats) -> acc + st.Sb_service.Wire.st_max_bits)
        0 r.Sb_service.Sdk.final_stats
    in
    let peak_bits = max r.Sb_service.Sdk.peak_sampled_bits sum_max_bits in
    if settle_ms > 0 then Unix.sleepf (float_of_int settle_ms /. 1000.0);
    let quiescent_stats =
      Sb_service.Sdk.fetch_stats ~sockdir ~servers:(List.init n Fun.id) ()
    in
    let final_bits =
      List.fold_left
        (fun acc (st : Sb_service.Wire.stats) ->
          acc + st.Sb_service.Wire.st_storage_bits)
        0 quiescent_stats
    in
    Printf.printf "storage (bits)  : peak %d (sampled %d, sum of maxima %d), \
                   quiescent %d\n"
      peak_bits r.Sb_service.Sdk.peak_sampled_bits sum_max_bits final_bits;
    let check_bounds = (not no_bounds) && algo = Adaptive in
    if check_bounds then
      if open_loop then begin
        Printf.printf
          "theorem 2 (key) : per-key peak %d <= \
           min((c+1)(2f+k),(2f+k)^2)D/k = %d  %s\n"
          per_key_peak_bits ceiling_bits
          (if per_key_peak_bits <= ceiling_bits then "ok" else "EXCEEDED");
        Printf.printf "theorem 2 (all) : peak %d <= %d keys x ceiling = %d  %s\n"
          peak_bits nkeys fleet_ceiling_bits
          (if peak_bits <= fleet_ceiling_bits then "ok" else "EXCEEDED");
        (* The floor is the paper's lower bound: live objects cannot
           cost less than m D/k each.  What quiescence asserts about
           the implementation is that GC returns close to it — within
           2x fleet-wide, i.e. on average at most one stale generation
           per key.  (Exactly the floor is typical but not guaranteed:
           a key whose last operation raced a crash or another writer
           legitimately retains one extra generation until its next
           operation.)  test_kv asserts the exact floor under a
           deterministic keyed workload. *)
        Printf.printf
          "gc floor (all)  : quiescent %d vs %d keys x (2f+k)D/k = %d \
           (%.3fx, budget <= 2x)  %s\n"
          final_bits nkeys fleet_floor_bits
          (float_of_int final_bits /. float_of_int (max 1 fleet_floor_bits))
          (if final_bits <= 2 * fleet_floor_bits then "ok" else "EXCEEDED");
        if per_key_peak_bits > ceiling_bits then
          fail "per-key peak storage %d exceeds Theorem 2 ceiling %d"
            per_key_peak_bits ceiling_bits;
        if peak_bits > fleet_ceiling_bits then
          fail "fleet peak storage %d exceeds %d-key ceiling %d" peak_bits
            nkeys fleet_ceiling_bits;
        if final_bits > 2 * fleet_floor_bits then
          fail "fleet quiescent storage %d exceeds 2x the %d-key GC floor %d"
            final_bits nkeys fleet_floor_bits
      end
      else begin
        Printf.printf
          "theorem 2       : peak %d <= ceiling min((c+1)(2f+k),(2f+k)^2)D/k = \
           %d  %s\n"
          peak_bits ceiling_bits
          (if peak_bits <= ceiling_bits then "ok" else "EXCEEDED");
        Printf.printf "gc floor        : quiescent %d <= (2f+k)D/k = %d  %s\n"
          final_bits floor_bits
          (if final_bits <= floor_bits then "ok" else "EXCEEDED");
        if peak_bits > ceiling_bits then
          fail "peak storage %d exceeds Theorem 2 ceiling %d" peak_bits
            ceiling_bits;
        if final_bits > floor_bits then
          fail "quiescent storage %d exceeds GC floor %d" final_bits floor_bits
      end
    else
      Printf.printf
        "bounds          : skipped (%s)\n"
        (if no_bounds then "--no-bound-check" else "not the adaptive algorithm");
    (if List.length quiescent_stats < n then
       fail "only %d/%d servers answered the quiescent stats round"
         (List.length quiescent_stats)
         n);
    let throughput =
      float_of_int r.Sb_service.Sdk.ops_completed
      /. Float.max 1e-9 (r.Sb_service.Sdk.wall_ms /. 1000.0)
    in
    let ok_run = !failures = [] in
    Sb_util.Jsonx.write json
      ([
         ("algo", Sb_util.Jsonx.str algorithm.Sb_sim.Runtime.name);
         ("mode", Sb_util.Jsonx.str (if open_loop then "open" else "closed"));
         ("n", Sb_util.Jsonx.int n);
         ("f", Sb_util.Jsonx.int f);
         ("k", Sb_util.Jsonx.int kk);
         ("seed", Sb_util.Jsonx.int seed);
         ("ops", Sb_util.Jsonx.int r.Sb_service.Sdk.ops_completed);
         ("throughput_ops_s", Sb_util.Jsonx.float throughput);
         ( "ms_per_op",
           Sb_util.Jsonx.float (1000.0 /. Float.max 1e-9 throughput) );
         ("p50_ms", Sb_util.Jsonx.float p50);
         ("p95_ms", Sb_util.Jsonx.float p95);
         ("p99_ms", Sb_util.Jsonx.float p99);
         ("max_ms", Sb_util.Jsonx.float pmax);
         ("batch", Sb_util.Jsonx.int batch);
         ("flush_ms", Sb_util.Jsonx.int flush_ms);
         ("batches_sent", Sb_util.Jsonx.int r.Sb_service.Sdk.batches_sent);
         ("frames_sent", Sb_util.Jsonx.int r.Sb_service.Sdk.frames_sent);
         ("peak_bits", Sb_util.Jsonx.int peak_bits);
         ("ceiling_bits", Sb_util.Jsonx.int ceiling_bits);
         ("quiescent_bits", Sb_util.Jsonx.int final_bits);
         ("floor_bits", Sb_util.Jsonx.int floor_bits);
         ("retransmissions", Sb_util.Jsonx.int r.Sb_service.Sdk.retransmissions);
         ("reconnects", Sb_util.Jsonx.int r.Sb_service.Sdk.reconnects);
         ("recoveries", Sb_util.Jsonx.int r.Sb_service.Sdk.recoveries_observed);
         ("downgrades", Sb_util.Jsonx.int r.Sb_service.Sdk.downgrades);
         ( "schema_rejects",
           Sb_util.Jsonx.int (List.length r.Sb_service.Sdk.schema_rejects) );
         ("weak_ok", Sb_util.Jsonx.bool weak_ok);
         ("algo_check_ok", Sb_util.Jsonx.bool algo_ok);
       ]
      @ (if open_loop then
           [
             ("rate_target_ops_s", Sb_util.Jsonx.float rate);
             ("duration_ms", Sb_util.Jsonx.int duration_ms);
             ("keys", Sb_util.Jsonx.int keys);
             ("key_dist", Sb_util.Jsonx.str key_dist);
             ("write_ratio", Sb_util.Jsonx.float write_ratio);
             ("max_inflight", Sb_util.Jsonx.int max_inflight);
             ("per_key_peak_bits", Sb_util.Jsonx.int per_key_peak_bits);
             ("per_key_ceiling_bits", Sb_util.Jsonx.int ceiling_bits);
             ("fleet_ceiling_bits", Sb_util.Jsonx.int fleet_ceiling_bits);
             ("fleet_floor_bits", Sb_util.Jsonx.int fleet_floor_bits);
             ("gate_min_throughput_ops_s", Sb_util.Jsonx.float 900.0);
             ("gate_max_p99_ms", Sb_util.Jsonx.float 50.0);
           ]
         else [])
      @ [ ("ok", Sb_util.Jsonx.bool ok_run) ]);
    (if check then begin
       let baseline =
         Filename.concat "bench/baselines" (Filename.basename json)
       in
       if
         not
           (Sb_util.Jsonx.check ~current:json ~baseline
              ~keys:[ "ms_per_op"; "p99_ms" ] ())
       then fail "regression against baseline %s" baseline;
       if Sys.file_exists baseline then begin
         (match Sb_util.Jsonx.field baseline "gate_min_throughput_ops_s" with
          | Some g when throughput < g ->
            fail "throughput %.1f ops/s below baseline gate %.1f" throughput g
          | Some g ->
            Printf.printf
              "gate            : throughput %.1f >= %.1f ops/s  ok\n"
              throughput g
          | None -> ());
         match Sb_util.Jsonx.field baseline "gate_max_p99_ms" with
         | Some g when p99 > g ->
           fail "p99 %.2f ms above baseline gate %.2f ms" p99 g
         | Some g ->
           Printf.printf "gate            : p99 %.2f <= %.2f ms  ok\n" p99 g
         | None -> ()
       end
     end);
    let ok = !failures = [] in
    if not ok then begin
      List.iter (Printf.printf "loadgen FAIL    : %s\n") (List.rev !failures);
      exit 1
    end;
    print_endline "loadgen         : ok"
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a seeded workload against a live cluster, closed-loop by \
             default or open-loop ($(b,--open-loop)) with Poisson arrivals \
             over many keys: throughput and coordinated-omission-safe latency \
             percentiles, storage sampled from the stats endpoint and checked \
             against the Theorem 2 ceiling (per key and fleet-wide) during \
             the run and the (2f+k)D/k GC floor after quiescence, and \
             closed-loop histories checked for regularity.  $(b,--check) \
             gates the run against a committed baseline in bench/baselines.")
    Term.(
      const run $ algo_arg $ value_bytes_arg $ serve_f_arg $ serve_k_arg
      $ seed_arg $ writers_arg $ writes_each_arg $ readers_arg
      $ reads_each_arg $ sockdir_arg $ rto_arg $ max_attempts_arg $ sample_arg
      $ deadline_arg $ settle_arg $ think_arg $ json_arg $ no_bounds_arg
      $ open_loop_arg $ rate_arg $ duration_arg $ keys_arg $ key_dist_arg
      $ write_ratio_arg $ max_inflight_arg $ batch_arg $ flush_arg $ check_arg)

(* ------------------------------------------------------------------ *)
(* schema — dump the wire schema, certify cross-version compatibility  *)
(* ------------------------------------------------------------------ *)

let schema_cmd =
  let module Sch = Sb_schema.Schema in
  let module Compat = Sb_schema.Compat in
  let module W = Sb_service.Wire in
  let golden_path dir v = Filename.concat dir (Printf.sprintf "v%d.json" v) in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let version_ok v = v >= W.min_version && v <= W.version in
  let dump_cmd =
    let version_arg =
      Arg.(
        value & opt int W.version
        & info [ "schema-version" ] ~docv:"N"
            ~doc:"Wire version to describe (default: the newest).")
    in
    let out_arg =
      Arg.(
        value & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Write to $(docv) instead of stdout (this is how the golden \
                  schemas/v<N>.json files are (re)generated).")
    in
    let run v out =
      if not (version_ok v) then begin
        Printf.eprintf "schema dump: version %d outside %d..%d\n" v
          W.min_version W.version;
        exit 2
      end;
      let json = Sch.to_json (W.schema_v ~version:v) in
      match out with
      | None -> print_string json
      | Some file ->
        let oc = open_out file in
        output_string oc json;
        close_out oc;
        Printf.printf "wrote %s (hash %s)\n" file
          (Sch.hash_hex (W.schema_v ~version:v))
    in
    Cmd.v
      (Cmd.info "dump"
         ~doc:"Print the programmatic wire schema (extracted from the codec, \
               so it cannot drift) as canonical JSON.")
      Term.(const run $ version_arg $ out_arg)
  in
  let check_cmd =
    let dir_arg =
      Arg.(
        value & opt string "schemas"
        & info [ "dir" ] ~docv:"DIR"
            ~doc:"Directory of committed golden v<N>.json schemas.")
    in
    let all_arg =
      Arg.(
        value & flag
        & info [ "all" ]
            ~doc:"Also run the seeded negative controls: a reordered field \
                  pair and a narrowed scalar, both of which the certifier \
                  must refute (the reorder with a concrete MISINTERPRET \
                  counterexample) or it has lost its teeth.")
    in
    let old_arg =
      Arg.(
        value & opt (some file) None
        & info [ "old" ] ~docv:"FILE" ~doc:"Writer-side schema JSON file.")
    in
    let new_arg =
      Arg.(
        value & opt (some file) None
        & info [ "new" ] ~docv:"FILE" ~doc:"Reader-side schema JSON file.")
    in
    let json_arg =
      Arg.(
        value & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the full machine-readable report (every cell, every \
                  counterexample) to $(docv).")
    in
    let run dir all old_f new_f json =
      let module J = Sb_util.Jsonx in
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
      let results = ref [] in
      let note_result label (r : Compat.result) =
        results := (label, r) :: !results;
        print_string (Compat.render r);
        print_newline ()
      in
      let drift_notes = ref [] in
      (match (old_f, new_f) with
       | Some o, Some nw ->
         (* Explicit file-vs-file mode. *)
         let load path =
           match Sch.of_json (read_file path) with
           | Ok s -> s
           | Error e ->
             Printf.eprintf "schema check: %s: %s\n" path e;
             exit 2
         in
         let r = Compat.check ~old_:(load o) ~new_:(load nw) in
         note_result (Printf.sprintf "%s -> %s" o nw) r;
         if not r.Compat.r_compatible then
           fail "%s and %s are incompatible" o nw
       | Some _, None | None, Some _ ->
         prerr_endline "schema check: --old and --new go together";
         exit 2
       | None, None ->
         (* 1. Golden drift gate: the committed description of every
            supported version must equal the one the codec produces. *)
         for v = W.min_version to W.version do
           let code = W.schema_v ~version:v in
           let path = golden_path dir v in
           if not (Sys.file_exists path) then
             fail "golden %s missing (regenerate: spacebounds schema dump \
                   --schema-version %d -o %s)"
               path v path
           else
             match Sch.of_json (read_file path) with
             | Error e -> fail "golden %s unreadable: %s" path e
             | Ok golden ->
               if Sch.equal golden code then
                 Printf.printf "golden v%d      : %s matches the code (hash %s)\n"
                   v path (Sch.hash_hex code)
               else begin
                 fail "golden %s drifted from the code (an edit without a \
                       version bump)" path;
                 List.iter
                   (fun line ->
                     drift_notes := line :: !drift_notes;
                     Printf.printf "  drift: %s\n" line)
                   (Sch.diff golden code)
               end
         done;
         (* 2. Every consecutive version pair must be certified
            compatible in both directions. *)
         for v = W.min_version to W.version - 1 do
           let r =
             Compat.check ~old_:(W.schema_v ~version:v)
               ~new_:(W.schema_v ~version:(v + 1))
           in
           note_result (Printf.sprintf "v%d <-> v%d" v (v + 1)) r;
           if not r.Compat.r_compatible then
             fail "wire v%d and v%d are not decode-compatible" v (v + 1)
         done;
         (* 3. The teeth: seeded incompatible edits must be refuted. *)
         if all then
           List.iter
             (fun (name, desc, edited) ->
               let r = Compat.check ~old_:W.schema ~new_:edited in
               note_result (Printf.sprintf "seeded:%s" name) r;
               if r.Compat.r_compatible then
                 fail "seeded edit %S was NOT refuted (%s)" name desc
               else begin
                 Printf.printf "seeded %-26s: refuted, as it must be (%s)\n"
                   name desc;
                 if name = "reordered-welcome-fields" then begin
                   let has_witness =
                     List.exists
                       (fun (c : Compat.cell) ->
                         c.Compat.c_verdict = Compat.Misinterpret
                         && c.Compat.c_witness <> None)
                       r.Compat.r_cells
                   in
                   if not has_witness then
                     fail "seeded edit %S refuted without a concrete \
                           MISINTERPRET counterexample"
                       name
                 end
               end)
             (Compat.seeded_edits W.schema));
      let ok = !failures = [] in
      (match json with
       | None -> ()
       | Some file ->
         let body =
           J.obj
             [
               ("suite", J.str "schema-check");
               ("ok", J.bool ok);
               ("newest_version", J.int W.version);
               ("newest_hash", J.str W.schema_hash_hex);
               ( "drift",
                 J.arr (List.rev_map (fun l -> J.str l) !drift_notes) );
               ( "failures",
                 J.arr (List.rev_map (fun l -> J.str l) !failures) );
               ( "checks",
                 J.arr
                   (List.rev_map
                      (fun (label, r) ->
                        J.obj
                          [
                            ("label", J.str label);
                            ("result", Compat.result_json r);
                          ])
                      !results) );
             ]
         in
         let oc = open_out file in
         output_string oc body;
         output_char oc '\n';
         close_out oc;
         Printf.printf "wrote %s\n" file);
      if ok then print_endline "SCHEMA: ok"
      else begin
        List.iter (Printf.printf "SCHEMA FAIL     : %s\n") (List.rev !failures);
        print_endline "SCHEMA: FAIL";
        exit 1
      end
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:"Certify wire-schema compatibility: diff the committed golden \
               schemas against the codec's own description (drift gate), \
               classify every cross-version (writer, reader) field pair over \
               the tag/width lattice, and fail with a concrete counterexample \
               payload on any possible misinterpretation.")
      Term.(const run $ dir_arg $ all_arg $ old_arg $ new_arg $ json_arg)
  in
  Cmd.group
    (Cmd.info "schema"
       ~doc:"Self-describing wire schemas: dump the codec's layout \
             description, statically certify old/new compatibility, refute \
             seeded incompatible edits.")
    [ dump_cmd; check_cmd ]

(* ------------------------------------------------------------------ *)
(* quorums                                                             *)
(* ------------------------------------------------------------------ *)

let quorums_cmd =
  let n_arg =
    Arg.(value & opt int 6 & info [ "n" ] ~docv:"N" ~doc:"Number of base objects.")
  in
  let run n f k =
    let module Q = Sb_quorums.Quorum in
    let system, verdict = Q.register_requirements ~n ~f ~k in
    Printf.printf "quorum system     : %s\n" system.Q.name;
    Printf.printf "n >= 2f + k       : %b  (n=%d, f=%d, k=%d)\n" (n >= (2 * f) + k) n f k;
    if n <= 20 then begin
      Printf.printf "available after f : %b\n" (Q.available_after system ~failures:f);
      Printf.printf "min intersection  : %d (need >= k = %d)\n"
        (Q.min_intersection system) k;
      let minimal = Q.minimal_quorums system in
      Printf.printf "minimal quorums   : %d of size %d\n" (List.length minimal)
        (match minimal with q :: _ -> List.length q | [] -> 0)
    end;
    Printf.printf "register-ready    : %b\n" verdict
  in
  Cmd.v
    (Cmd.info "quorums"
       ~doc:"Check the quorum-system requirements behind 'await n - f responses'.")
    Term.(const run $ n_arg $ f_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let src_arg =
    Arg.(
      value & opt string "lib"
      & info [ "src" ] ~docv:"DIR" ~doc:"Source tree to lint (default lib).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON to $(docv).")
  in
  let algebra_only_arg =
    Arg.(
      value & flag
      & info [ "algebra-only" ]
          ~doc:"Only certify the RMW algebra; skip the source lint.")
  in
  let src_only_arg =
    Arg.(
      value & flag
      & info [ "src-only" ]
          ~doc:"Only run the source lint; skip the algebra certifier.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Print the full independence matrix and pragma-allowed findings.")
  in
  let run src json algebra_only src_only verbose =
    let module A = Sb_analyze.Certify in
    let module L = Sb_analyze.Lint in
    let module Rep = Sb_analyze.Report in
    let failed = ref false in
    let algebra =
      if src_only then None
      else begin
        let t0 = Unix.gettimeofday () in
        let c = A.run () in
        Printf.printf
          "algebra: certified %d constructors over %d states x %d descriptions \
           (%d applies, %.2fs)\n"
          (List.length c.A.entries) c.A.n_states c.A.n_descs c.A.applies
          (Unix.gettimeofday () -. t0);
        if verbose then Format.printf "%a@." A.pp c;
        List.iter
          (fun (g : Rep.gate) ->
            Printf.printf "  %s %s: %s\n"
              (if g.Rep.g_ok then "[ok]" else "[FAIL]")
              g.g_name g.g_detail;
            if not g.g_ok then failed := true)
          (Rep.gates c);
        Some c
      end
    in
    let lint =
      if algebra_only then None
      else begin
        let rp = L.lint_tree ~root:src in
        let active = L.failures rp in
        let allowed =
          List.length rp.L.rp_findings - List.length active
        in
        Printf.printf "lint: %d files under %s: %d finding(s), %d allowed by pragma\n"
          rp.L.rp_files src (List.length active) allowed;
        List.iter (fun f -> Format.printf "  %a@." L.pp_finding f) active;
        if verbose then
          List.iter
            (fun f -> if not (L.active f) then Format.printf "  %a@." L.pp_finding f)
            rp.rp_findings;
        List.iter
          (fun (file, e) -> Printf.printf "  %s: parse error: %s\n" file e)
          rp.rp_errors;
        if active <> [] || rp.rp_errors <> [] then failed := true;
        Some rp
      end
    in
    (match json with
    | Some path ->
      Rep.write ~path (Rep.json ?algebra ?lint ());
      Printf.printf "wrote %s\n" path
    | None -> ());
    if !failed then begin
      print_endline "LINT: FAIL";
      exit 1
    end
    else print_endline "LINT: ok"
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Certify the RMW algebra (natures, idempotence, pairwise commutation) \
          and lint the sources for determinism hazards.")
    Term.(
      const run $ src_arg $ json_arg $ algebra_only_arg $ src_only_arg $ verbose_arg)

let () =
  let doc = "Space bounds for reliable storage (PODC 2016) — reproduction." in
  let info = Cmd.info "spacebounds" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiments_cmd; lower_bound_cmd; simulate_cmd; explore_cmd;
            replay_cmd; demo_cmd; quorums_cmd; audit_cmd; chaos_cmd;
            serve_cmd; loadgen_cmd; lint_cmd; schema_cmd;
          ]))
